#include "core/smacof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"

namespace uwp::core {

double weighted_stress(const std::vector<Vec2>& x, const Matrix& dist, const Matrix& w) {
  double s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> wrow = w.row(i);
    const std::span<const double> drow = dist.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (wrow[j] <= 0.0) continue;
      const double resid = drow[j] - distance(x[i], x[j]);
      s += wrow[j] * resid * resid;
    }
  }
  return s;
}

namespace {

std::size_t count_links(const Matrix& w) {
  std::size_t links = 0;
  for (std::size_t i = 0; i < w.rows(); ++i)
    for (std::size_t j = i + 1; j < w.cols(); ++j)
      if (w(i, j) > 0.0) ++links;
  return links;
}

// Weighted stress that also records each link's current distance (same
// i < j, w > 0 enumeration the B-matrix fill uses), so the next Guttman
// iteration reuses the hypot values instead of recomputing them.
double stress_with_cache(const std::vector<Vec2>& x, const Matrix& dist,
                         const Matrix& w, std::vector<double>& link_dist) {
  double s = 0.0;
  const std::size_t n = x.size();
  link_dist.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> wrow = w.row(i);
    const std::span<const double> drow = dist.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (wrow[j] <= 0.0) continue;
      const double dij = distance(x[i], x[j]);
      link_dist.push_back(dij);
      const double resid = drow[j] - dij;
      s += wrow[j] * resid * resid;
    }
  }
  return s;
}

// One SMACOF solve from a given start, writing into `res` and reusing the
// workspace's Guttman-transform buffers.
void run_from(SmacofResult& res, const std::vector<Vec2>& start, const Matrix& dist,
              const Matrix& w, const Matrix& v_pinv, const SmacofOptions& opts,
              SmacofWorkspace& ws) {
  const std::size_t n = start.size();
  res.positions.assign(start.begin(), start.end());
  std::vector<Vec2>& x = res.positions;
  res.num_links = count_links(w);
  res.iterations = 0;
  double stress = stress_with_cache(x, dist, w, ws.link_dist);

  Matrix& b = ws.b;
  Matrix& bx = ws.bx;
  bx.assign(n, 2);
  // The link set is fixed for the whole solve, so B's non-link entries stay
  // exactly zero: zero the matrix once and rewrite only links + diagonal
  // each iteration.
  b.assign(n, n);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Guttman transform: B(X) then X <- V^+ B(X) X. The two products are
    // fused n x 2 kernels accumulating in the same k-ascending order (with
    // the same exact-zero skip) as Matrix::operator*, so the iterates are
    // bit-identical to the naive matrix expressions. Link distances come
    // from the stress evaluation of the same configuration (bit-identical
    // values, computed once).
    std::size_t li = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> wrow = w.row(i);
      const std::span<const double> drow = dist.row(i);
      const std::span<double> brow = b.row(i);
      for (std::size_t j = i + 1; j < n; ++j) {
        if (wrow[j] <= 0.0) continue;
        const double dij = ws.link_dist[li++];
        const double val = dij > 1e-12 ? -wrow[j] * drow[j] / dij : 0.0;
        brow[j] = val;
        b(j, i) = val;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Sum the row's off-diagonal entries in ascending-j order, skipping
      // the diagonal slot (it holds the previous iteration's value).
      const std::span<const double> brow = b.row(i);
      double diag = 0.0;
      for (std::size_t j = 0; j < i; ++j) diag -= brow[j];
      for (std::size_t j = i + 1; j < n; ++j) diag -= brow[j];
      b(i, i) = diag;
    }
    for (std::size_t r = 0; r < n; ++r) {
      const std::span<const double> brow = b.row(r);
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double f = brow[k];
        if (f == 0.0) continue;
        s0 += f * x[k].x;
        s1 += f * x[k].y;
      }
      bx(r, 0) = s0;
      bx(r, 1) = s1;
    }
    for (std::size_t r = 0; r < n; ++r) {
      const std::span<const double> prow = v_pinv.row(r);
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double f = prow[k];
        if (f == 0.0) continue;
        s0 += f * bx(k, 0);
        s1 += f * bx(k, 1);
      }
      x[r] = {s0, s1};
    }

    const double new_stress = stress_with_cache(x, dist, w, ws.link_dist);
    res.iterations = iter + 1;
    if (stress - new_stress <= opts.rel_tolerance * std::max(stress, 1e-30)) {
      stress = new_stress;
      break;
    }
    stress = new_stress;
  }
  res.stress = stress;
  res.normalized_stress =
      res.num_links > 0 ? std::sqrt(stress / static_cast<double>(res.num_links)) : 0.0;
}

}  // namespace

SmacofResult smacof_2d(const Matrix& dist, const Matrix& w, const SmacofOptions& opts,
                       uwp::Rng& rng, const std::optional<std::vector<Vec2>>& init) {
  SmacofWorkspace ws;
  SmacofResult out;
  smacof_2d_into(out, dist, w, opts, rng, init ? &*init : nullptr, ws);
  return out;
}

void smacof_2d_into(SmacofResult& out, const Matrix& dist, const Matrix& w,
                    const SmacofOptions& opts, uwp::Rng& rng,
                    const std::vector<Vec2>* init, SmacofWorkspace& ws) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n || w.rows() != n || w.cols() != n)
    throw std::invalid_argument("smacof_2d: shape mismatch");
  // Reset without releasing the caller's buffers.
  out.positions.clear();
  out.stress = 0.0;
  out.normalized_stress = 0.0;
  out.iterations = 0;
  out.num_links = 0;
  if (n == 0) return;
  if (n == 1) {
    out.positions.assign(1, Vec2{0, 0});
    return;
  }

  // V = diag(sum_j w_ij) - W; pseudo-inverse handles the rank deficiency
  // from translation invariance (and disconnected graphs). Reused verbatim
  // when the weight matrix is the one already cached.
  if (!(ws.v_pinv_valid && ws.cached_w == w)) {
    Matrix& v = ws.v;
    v.assign(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        v(i, j) = -w(i, j);
        diag += w(i, j);
      }
      v(i, i) = diag;
    }
    pseudo_inverse_symmetric_into(v, ws.v_pinv, ws.mds.eigen);
    ws.cached_w = w;
    ws.v_pinv_valid = true;
  }

  const std::size_t num_starts = 1 + static_cast<std::size_t>(
                                         opts.random_restarts > 0 ? opts.random_restarts : 0);
  if (ws.starts.size() < num_starts) ws.starts.resize(num_starts);
  if (init) {
    ws.starts[0].assign(init->begin(), init->end());
  } else {
    classical_mds_2d_weighted_into(ws.starts[0], dist, w, ws.mds);
  }
  for (std::size_t r = 1; r < num_starts; ++r) {
    std::vector<Vec2>& rand_start = ws.starts[r];
    rand_start.resize(n);
    for (Vec2& p : rand_start)
      p = {rng.uniform(-opts.init_spread, opts.init_spread),
           rng.uniform(-opts.init_spread, opts.init_spread)};
  }

  bool have = false;
  for (std::size_t s = 0; s < num_starts; ++s) {
    run_from(ws.scratch, ws.starts[s], dist, w, ws.v_pinv, opts, ws);
    if (!have || ws.scratch.stress < out.stress) {
      std::swap(out, ws.scratch);
      have = true;
    }
  }
}

}  // namespace uwp::core
