// 3D -> 2D projection of the pairwise distance matrix using per-device depth
// sensor readings (§2.1.1): D2D_ij = sqrt(D_ij^2 - (h_i - h_j)^2). Noisy
// measurements can make the radicand negative; those are clamped to zero
// (devices at the same horizontal spot).
#pragma once

#include <span>

#include "util/matrix.hpp"

namespace uwp::core {

// Project the NxN 3D distance matrix to horizontal-plane distances. Entries
// with zero weight are passed through as zero. Throws on shape mismatch.
Matrix project_to_2d(const Matrix& dist3d, std::span<const double> depths);

// Workspace variant: writes into `out` (reshaped in place, no allocation in
// steady state); bit-identical to project_to_2d.
void project_to_2d_into(Matrix& out, const Matrix& dist3d,
                        std::span<const double> depths);

// Reconstruct 3D distances from horizontal distances + depths (inverse of
// the projection; used by tests and the analytical evaluation).
Matrix lift_to_3d(const Matrix& dist2d, std::span<const double> depths);

}  // namespace uwp::core
