#include "core/tracker.hpp"

#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"

namespace uwp::core {

DiverTrack::DiverTrack(TrackerConfig cfg)
    : cfg_(cfg), state_(4, 1), cov_(Matrix::identity(4) * 1e4) {}

void DiverTrack::predict(double dt_s) {
  if (!initialized_ || dt_s <= 0.0) return;
  // Velocity decay keeps coasting bounded when rounds stop arriving.
  const double decay = std::exp(-dt_s / cfg_.velocity_decay_tau_s);

  Matrix f = Matrix::identity(4);
  f(0, 2) = dt_s;
  f(1, 3) = dt_s;
  f(2, 2) = decay;
  f(3, 3) = decay;

  // Discrete white-noise acceleration model.
  const double q = cfg_.accel_noise * cfg_.accel_noise;
  const double dt2 = dt_s * dt_s;
  const double dt3 = dt2 * dt_s / 2.0;
  const double dt4 = dt2 * dt2 / 4.0;
  Matrix qm(4, 4);
  qm(0, 0) = qm(1, 1) = q * dt4;
  qm(0, 2) = qm(2, 0) = qm(1, 3) = qm(3, 1) = q * dt3;
  qm(2, 2) = qm(3, 3) = q * dt2;

  state_ = f * state_;
  cov_ = f * cov_ * f.transposed() + qm;
}

bool DiverTrack::update(Vec2 measured, double sigma_m) {
  const double sigma = sigma_m > 0.0 ? sigma_m : cfg_.measurement_sigma_m;
  const double r = sigma * sigma;

  if (!initialized_) {
    state_(0, 0) = measured.x;
    state_(1, 0) = measured.y;
    state_(2, 0) = 0.0;
    state_(3, 0) = 0.0;
    cov_ = Matrix::identity(4);
    cov_(0, 0) = cov_(1, 1) = r;
    cov_(2, 2) = cov_(3, 3) = 0.25;  // ~0.5 m/s initial velocity uncertainty
    initialized_ = true;
    return true;
  }

  // Innovation and gating (H = [I2 0]).
  const double ix = measured.x - state_(0, 0);
  const double iy = measured.y - state_(1, 0);
  Matrix s(2, 2);
  s(0, 0) = cov_(0, 0) + r;
  s(0, 1) = cov_(0, 1);
  s(1, 0) = cov_(1, 0);
  s(1, 1) = cov_(1, 1) + r;
  // Mahalanobis distance of the innovation.
  const std::vector<double> solved = solve(s, std::vector<double>{ix, iy});
  const double maha2 = ix * solved[0] + iy * solved[1];
  if (maha2 > cfg_.gate_sigmas * cfg_.gate_sigmas) return false;

  // Kalman gain K = P H^T S^-1 (4x2).
  const Matrix s_inv = inverse(s);
  Matrix pht(4, 2);
  for (std::size_t row = 0; row < 4; ++row) {
    pht(row, 0) = cov_(row, 0);
    pht(row, 1) = cov_(row, 1);
  }
  const Matrix k = pht * s_inv;

  Matrix innovation(2, 1);
  innovation(0, 0) = ix;
  innovation(1, 0) = iy;
  state_ += k * innovation;

  // Joseph-free covariance update: P = (I - K H) P.
  Matrix kh(4, 4);
  for (std::size_t row = 0; row < 4; ++row) {
    kh(row, 0) = k(row, 0);
    kh(row, 1) = k(row, 1);
  }
  cov_ = (Matrix::identity(4) - kh) * cov_;
  return true;
}

Vec2 DiverTrack::position() const { return {state_(0, 0), state_(1, 0)}; }

Vec2 DiverTrack::velocity() const { return {state_(2, 0), state_(3, 0)}; }

double DiverTrack::position_sigma() const {
  return std::sqrt(std::max(cov_(0, 0), cov_(1, 1)));
}

GroupTracker::GroupTracker(std::size_t num_devices, TrackerConfig cfg) {
  if (num_devices < 2)
    throw std::invalid_argument("GroupTracker: need at least 2 devices");
  tracks_.assign(num_devices - 1, DiverTrack(cfg));
}

void GroupTracker::predict(double dt_s) {
  for (DiverTrack& t : tracks_) t.predict(dt_s);
}

void GroupTracker::update(const std::vector<std::optional<Vec2>>& positions,
                          double sigma_m) {
  for (std::size_t i = 1; i < positions.size() && i <= tracks_.size(); ++i)
    if (positions[i]) tracks_[i - 1].update(*positions[i], sigma_m);
}

const DiverTrack& GroupTracker::track(std::size_t device) const {
  if (device == 0 || device > tracks_.size())
    throw std::invalid_argument("GroupTracker: bad device index");
  return tracks_[device - 1];
}

}  // namespace uwp::core
