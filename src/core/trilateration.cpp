#include "core/trilateration.hpp"

#include <cmath>
#include <limits>

#include "util/linalg.hpp"
#include "util/matrix.hpp"
#include "util/simd_kernels.hpp"

namespace uwp::core {

std::optional<TrilaterationResult> trilaterate_2d(const std::vector<Vec2>& anchors,
                                                  const std::vector<double>& ranges,
                                                  const TrilaterationOptions& opts,
                                                  std::optional<Vec2> initial,
                                                  TrilaterationWorkspace* ws) {
  const std::size_t n = anchors.size();
  if (n < 3 || ranges.size() != n) return std::nullopt;

  TrilaterationWorkspace local;
  TrilaterationWorkspace& w = ws != nullptr ? *ws : local;

  Vec2 x = initial.value_or(centroid(anchors));
  TrilaterationResult out;

  // Anchor SoA for the residual kernel, staged once per solve. Pad anchors
  // sit at the origin with zero range; the mask zeroes their contribution
  // (their geometric terms would otherwise be nonzero).
  const std::size_t np = simd::padded(n);
  w.soa_ax.assign(np, 0.0);
  w.soa_ay.assign(np, 0.0);
  w.soa_r.assign(np, 0.0);
  w.soa_mask.assign(np, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w.soa_ax[i] = anchors[i].x;
    w.soa_ay[i] = anchors[i].y;
    w.soa_r[i] = ranges[i];
    w.soa_mask[i] = 1.0;
  }

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    out.iterations = iter + 1;
    // Residuals r_i = ||x - a_i|| - d_i and Jacobian rows (unit vectors),
    // accumulated by the vector kernel.
    const kernels::TrilatAccum acc = kernels::trilat_accumulate<simd::ActiveOps>(
        w.soa_ax.data(), w.soa_ay.data(), w.soa_r.data(), w.soa_mask.data(), np, x.x,
        x.y);
    Matrix& jtj = w.jtj;
    jtj.assign(2, 2);
    jtj(0, 0) = acc.jtj00 + opts.damping;
    jtj(0, 1) = acc.jtj01;
    jtj(1, 0) = acc.jtj01;
    jtj(1, 1) = acc.jtj11 + opts.damping;
    std::vector<double>& jtr = w.jtr;
    jtr.assign(2, 0.0);
    jtr[0] = acc.jtr0;
    jtr[1] = acc.jtr1;
    const double sse = acc.sse;

    std::vector<double>& step = w.step;
    try {
      solve_into(jtj, jtr, step, w.lu, w.perm);
    } catch (const std::exception&) {
      return std::nullopt;  // collinear anchors
    }
    x = x - Vec2{step[0], step[1]};
    out.residual_rms_m = std::sqrt(sse / static_cast<double>(n));
    if (std::hypot(step[0], step[1]) < opts.tolerance_m) break;
  }
  if (!std::isfinite(x.x) || !std::isfinite(x.y)) return std::nullopt;
  out.position = x;
  return out;
}

double gdop_2d(const std::vector<Vec2>& anchors, Vec2 position) {
  if (anchors.size() < 2) return std::numeric_limits<double>::infinity();
  Matrix jtj(2, 2);
  for (const Vec2& a : anchors) {
    const Vec2 diff = position - a;
    const double dist = std::max(diff.norm(), 1e-9);
    const Vec2 u = diff * (1.0 / dist);
    jtj(0, 0) += u.x * u.x;
    jtj(0, 1) += u.x * u.y;
    jtj(1, 0) += u.y * u.x;
    jtj(1, 1) += u.y * u.y;
  }
  const double det = determinant(jtj);
  if (det < 1e-12) return std::numeric_limits<double>::infinity();
  // GDOP = sqrt(trace((J^T J)^-1)).
  const Matrix inv = inverse(jtj);
  return std::sqrt(inv(0, 0) + inv(1, 1));
}

}  // namespace uwp::core
