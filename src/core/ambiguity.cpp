#include "core/ambiguity.hpp"

#include <cmath>
#include <stdexcept>

namespace uwp::core {

std::vector<Vec2> translate_leader_to_origin(std::vector<Vec2> pts) {
  translate_leader_to_origin_inplace(pts);
  return pts;
}

void translate_leader_to_origin_inplace(std::vector<Vec2>& pts) {
  if (pts.empty()) return;
  const Vec2 origin = pts[0];
  for (Vec2& p : pts) p = p - origin;
}

std::vector<Vec2> resolve_rotation(std::vector<Vec2> pts, double pointing_bearing_rad) {
  resolve_rotation_inplace(pts, pointing_bearing_rad);
  return pts;
}

void resolve_rotation_inplace(std::vector<Vec2>& pts, double pointing_bearing_rad) {
  if (pts.size() < 2) return;
  if (pts[0].norm() > 1e-9)
    throw std::invalid_argument("resolve_rotation: node 0 must be at the origin");
  const double current = bearing(pts[1]);
  const double delta = wrap_angle(pointing_bearing_rad - current);
  for (Vec2& p : pts) p = rotate(p, delta);
}

std::vector<Vec2> flip_configuration(const std::vector<Vec2>& pts) {
  std::vector<Vec2> out;
  flip_configuration_into(out, pts);
  return out;
}

void flip_configuration_into(std::vector<Vec2>& out, const std::vector<Vec2>& pts) {
  if (pts.size() < 2) {
    out = pts;
    return;
  }
  out.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    out[i] = reflect_across_line(pts[i], pts[0], pts[1]);
}

double flip_vote_score(const std::vector<Vec2>& pts, const std::vector<MicVote>& votes) {
  if (pts.size() < 2) return 0.0;
  double score = 0.0;
  for (const MicVote& v : votes) {
    if (v.node >= pts.size() || v.node < 2 || v.mic_sign == 0) continue;
    const double side = side_of_line(pts[v.node], pts[0], pts[1]);
    const double s = side > 0.0 ? 1.0 : (side < 0.0 ? -1.0 : 0.0);
    score += static_cast<double>(v.mic_sign) * s;
  }
  return score;
}

FlipDecision resolve_flip(const std::vector<Vec2>& pts, const std::vector<MicVote>& votes) {
  FlipDecision d;
  const std::vector<Vec2> mirrored = flip_configuration(pts);
  d.score_original = flip_vote_score(pts, votes);
  d.score_flipped = flip_vote_score(mirrored, votes);
  if (d.score_flipped > d.score_original) {
    d.positions = mirrored;
    d.flipped = true;
  } else {
    d.positions = pts;
  }
  return d;
}

}  // namespace uwp::core
