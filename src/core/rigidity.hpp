// Graph rigidity and unique realizability (§2.1.2). A 2D framework is
// uniquely determined by its pairwise distances iff the graph is redundantly
// rigid and 3-connected (Hendrickson / Jackson-Jordan, cited as [41]).
// Rigidity is tested with the (2,3) pebble game, the combinatorial
// counterpart of Laman's theorem; the outlier-detection loop uses these
// predicates to refuse to drop link subsets that would make the topology
// ambiguous.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/matrix.hpp"

namespace uwp::core {

using Edge = std::pair<std::size_t, std::size_t>;

// Undirected edge list from a symmetric weight matrix (w > 0 means present).
std::vector<Edge> edges_from_weights(const Matrix& w);

// Connectivity of the graph on `n` nodes.
bool is_connected(std::size_t n, const std::vector<Edge>& edges);

// Vertex k-connectivity: the graph stays connected after deleting any k-1
// vertices. Brute force over deletion sets — fine for dive-group sizes.
bool is_k_connected(std::size_t n, const std::vector<Edge>& edges, std::size_t k);

// Generic 2D rigidity via the (2,3) pebble game: true iff the edge set
// contains a spanning Laman subgraph (rank == 2n - 3).
bool is_rigid_2d(std::size_t n, const std::vector<Edge>& edges);

// Redundant rigidity: still rigid after removal of any single edge.
bool is_redundantly_rigid_2d(std::size_t n, const std::vector<Edge>& edges);

// Unique realizability in 2D: n <= 2 trivially; n == 3 requires the full
// triangle; n >= 4 requires redundant rigidity and 3-connectivity.
bool is_uniquely_realizable_2d(std::size_t n, const std::vector<Edge>& edges);

// Number of independent edges found by the pebble game (the generic rank of
// the rigidity matroid); exposed for tests and diagnostics.
std::size_t rigidity_rank(std::size_t n, const std::vector<Edge>& edges);

}  // namespace uwp::core
