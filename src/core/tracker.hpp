// Continuous tracking across localization rounds — the paper's stated future
// work (§5 "Localization versus tracking"): fuse the user-initiated acoustic
// snapshots with a motion model so positions remain available between rounds
// without continuous acoustic transmissions.
//
// Each diver gets an independent constant-velocity Kalman filter in the
// horizontal plane (depth comes from the depth sensor each round and needs
// no filtering). Acoustic rounds arrive at multi-second intervals with
// meter-scale noise; the filter smooths jitter and coasts through missed
// rounds, with the covariance reporting how stale the estimate is.
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.hpp"
#include "util/matrix.hpp"

namespace uwp::core {

struct TrackerConfig {
  // Process noise: random-walk acceleration magnitude (m/s^2). Divers swim
  // gently; 0.02 m/s^2 tracks 15-56 cm/s meandering well at 5 s round intervals.
  double accel_noise = 0.02;
  // Default measurement noise for one localization round (meters, 1 sigma).
  double measurement_sigma_m = 0.9;
  // Velocity decays toward zero with this time constant (seconds) during
  // prediction; divers do not drift forever on old velocity estimates.
  double velocity_decay_tau_s = 20.0;
  // Gate: measurements further than this many sigmas from the prediction
  // are rejected as outliers (bad rounds).
  double gate_sigmas = 4.0;
};

// Constant-velocity Kalman filter for one diver, state [x, y, vx, vy].
class DiverTrack {
 public:
  explicit DiverTrack(TrackerConfig cfg = {});

  bool initialized() const { return initialized_; }

  // Advance the motion model by dt seconds.
  void predict(double dt_s);

  // Fuse a position measurement. `sigma_m` overrides the configured
  // measurement noise when positive. Returns false when the measurement was
  // gated out as an outlier (filter state unchanged).
  bool update(Vec2 measured, double sigma_m = -1.0);

  Vec2 position() const;
  Vec2 velocity() const;
  double speed() const { return velocity().norm(); }

  // 1-sigma position uncertainty (max of the x/y standard deviations).
  double position_sigma() const;

 private:
  TrackerConfig cfg_;
  bool initialized_ = false;
  Matrix state_;  // 4x1
  Matrix cov_;    // 4x4
};

// Group tracker: one DiverTrack per device (leader excluded, it is the
// origin). Feeds each localization round into the per-diver filters.
class GroupTracker {
 public:
  GroupTracker(std::size_t num_devices, TrackerConfig cfg = {});

  std::size_t size() const { return tracks_.size() + 1; }

  void predict(double dt_s);

  // positions[i] is the round's estimate for device i (index 0 ignored);
  // nullopt entries are skipped (device not localized this round).
  void update(const std::vector<std::optional<Vec2>>& positions,
              double sigma_m = -1.0);

  const DiverTrack& track(std::size_t device) const;

 private:
  std::vector<DiverTrack> tracks_;  // device 1..N-1
};

}  // namespace uwp::core
