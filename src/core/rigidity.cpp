#include "core/rigidity.hpp"

#include <algorithm>
#include <functional>

namespace uwp::core {

std::vector<Edge> edges_from_weights(const Matrix& w) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < w.rows(); ++i)
    for (std::size_t j = i + 1; j < w.cols(); ++j)
      if (w(i, j) > 0.0) edges.emplace_back(i, j);
  return edges;
}

namespace {

std::vector<std::vector<std::size_t>> adjacency(std::size_t n,
                                                const std::vector<Edge>& edges) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (const Edge& e : edges) {
    adj[e.first].push_back(e.second);
    adj[e.second].push_back(e.first);
  }
  return adj;
}

// Connectivity with an optional set of removed vertices.
bool connected_excluding(std::size_t n, const std::vector<std::vector<std::size_t>>& adj,
                         const std::vector<bool>& removed) {
  std::size_t start = n;
  std::size_t alive = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (!removed[i]) {
      ++alive;
      if (start == n) start = i;
    }
  if (alive <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack = {start};
  seen[start] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t u : adj[v]) {
      if (!removed[u] && !seen[u]) {
        seen[u] = true;
        ++count;
        stack.push_back(u);
      }
    }
  }
  return count == alive;
}

// (2,3) pebble game. Each vertex starts with 2 pebbles. To insert an edge we
// must gather 4 pebbles on its endpoints (enforcing the "no subgraph with
// more than 2n'-3 edges" condition); inserting consumes one pebble and
// orients the edge away from the vertex that paid it.
class PebbleGame {
 public:
  explicit PebbleGame(std::size_t n) : n_(n), pebbles_(n, 2), out_(n) {}

  // Try to add edge (u, v) as independent. Returns false if dependent.
  bool add_edge(std::size_t u, std::size_t v) {
    if (u == v) return false;
    while (pebbles_[u] + pebbles_[v] < 4) {
      // Try to pull a pebble toward u or v by reversing a path.
      if (!(pull(u, v) || pull(v, u))) return false;
    }
    // Pay one pebble at u; orient u -> v.
    if (pebbles_[u] == 0) std::swap(u, v);
    --pebbles_[u];
    out_[u].push_back(v);
    return true;
  }

 private:
  // DFS from `root` (avoiding `other`) for a vertex with a free pebble; on
  // success reverse the path, moving the pebble to `root`.
  bool pull(std::size_t root, std::size_t other) {
    std::vector<bool> visited(n_, false);
    visited[root] = true;
    visited[other] = true;
    return dfs(root, visited);
  }

  bool dfs(std::size_t v, std::vector<bool>& visited) {
    for (std::size_t i = 0; i < out_[v].size(); ++i) {
      const std::size_t u = out_[v][i];
      if (visited[u]) continue;
      visited[u] = true;
      if (pebbles_[u] > 0) {
        --pebbles_[u];
        ++pebbles_[v];
        // Reverse edge v -> u into u -> v.
        out_[v].erase(out_[v].begin() + static_cast<std::ptrdiff_t>(i));
        out_[u].push_back(v);
        return true;
      }
      if (dfs(u, visited)) {
        // u just gained a pebble from deeper in the search; pass it to v.
        --pebbles_[u];
        ++pebbles_[v];
        out_[v].erase(out_[v].begin() + static_cast<std::ptrdiff_t>(i));
        out_[u].push_back(v);
        return true;
      }
    }
    return false;
  }

  std::size_t n_;
  std::vector<int> pebbles_;
  std::vector<std::vector<std::size_t>> out_;
};

}  // namespace

bool is_connected(std::size_t n, const std::vector<Edge>& edges) {
  if (n == 0) return true;
  const auto adj = adjacency(n, edges);
  return connected_excluding(n, adj, std::vector<bool>(n, false));
}

bool is_k_connected(std::size_t n, const std::vector<Edge>& edges, std::size_t k) {
  if (n <= k) {
    // Complete-graph convention: K_n is (n-1)-connected at most.
    std::vector<Edge> sorted = edges;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    return sorted.size() == n * (n - 1) / 2;
  }
  const auto adj = adjacency(n, edges);
  if (!connected_excluding(n, adj, std::vector<bool>(n, false))) return false;
  if (k <= 1) return true;

  // Delete every subset of k-1 vertices.
  std::vector<std::size_t> subset(k - 1);
  std::function<bool(std::size_t, std::size_t)> recurse =
      [&](std::size_t depth, std::size_t start) -> bool {
    if (depth == k - 1) {
      std::vector<bool> removed(n, false);
      for (std::size_t v : subset) removed[v] = true;
      return connected_excluding(n, adj, removed);
    }
    for (std::size_t v = start; v < n; ++v) {
      subset[depth] = v;
      if (!recurse(depth + 1, v + 1)) return false;
    }
    return true;
  };
  return recurse(0, 0);
}

std::size_t rigidity_rank(std::size_t n, const std::vector<Edge>& edges) {
  PebbleGame game(n);
  std::size_t rank = 0;
  for (const Edge& e : edges)
    if (game.add_edge(e.first, e.second)) ++rank;
  return rank;
}

bool is_rigid_2d(std::size_t n, const std::vector<Edge>& edges) {
  if (n <= 1) return true;
  if (n == 2) return !edges.empty();
  return rigidity_rank(n, edges) == 2 * n - 3;
}

bool is_redundantly_rigid_2d(std::size_t n, const std::vector<Edge>& edges) {
  if (!is_rigid_2d(n, edges)) return false;
  for (std::size_t drop = 0; drop < edges.size(); ++drop) {
    std::vector<Edge> remaining;
    remaining.reserve(edges.size() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i)
      if (i != drop) remaining.push_back(edges[i]);
    if (!is_rigid_2d(n, remaining)) return false;
  }
  return true;
}

bool is_uniquely_realizable_2d(std::size_t n, const std::vector<Edge>& edges) {
  if (n <= 2) return true;
  if (n == 3) return edges.size() >= 3 && is_connected(n, edges);
  return is_redundantly_rigid_2d(n, edges) && is_k_connected(n, edges, 3);
}

}  // namespace uwp::core
