// Weighted SMACOF (Scaling by MAjorizing a COmplicated Function) — the MDS
// solver at the heart of the topology estimation (§2.1.2). Minimizes the
// weighted stress
//   S(X) = sum_{i<j} w_ij (d_ij - ||x_i - x_j||)^2
// by iterating the Guttman transform X <- V^+ B(X) X, which majorizes S and
// decreases it monotonically. Zero weights encode missing links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/mds_classical.hpp"
#include "util/geometry.hpp"
#include "util/matrix.hpp"
#include "util/random.hpp"

namespace uwp::core {

struct SmacofOptions {
  int max_iterations = 500;
  // Stop when the relative stress decrease drops below this.
  double rel_tolerance = 1e-9;
  // Random restarts tried in addition to the classical-MDS start; the best
  // (lowest stress) solution wins. Guards against local minima when links
  // are missing.
  int random_restarts = 2;
  // Scale of random initial layouts (meters).
  double init_spread = 30.0;
};

struct SmacofResult {
  std::vector<Vec2> positions;
  double stress = 0.0;             // raw weighted stress (m^2)
  double normalized_stress = 0.0;  // sqrt(stress / #links): RMS residual, m
  int iterations = 0;
  std::size_t num_links = 0;
};

// Weighted raw stress of a configuration.
double weighted_stress(const std::vector<Vec2>& x, const Matrix& dist, const Matrix& w);

// Run SMACOF on the (projected 2D) distance matrix `dist` with weight matrix
// `w` (symmetric, non-negative; w_ij = 0 for missing links). If `init` is
// given it is used as the primary start; otherwise classical MDS with
// shortest-path completion seeds the solve. `rng` drives random restarts.
SmacofResult smacof_2d(const Matrix& dist, const Matrix& w, const SmacofOptions& opts,
                       uwp::Rng& rng,
                       const std::optional<std::vector<Vec2>>& init = std::nullopt);

// The i < j, w > 0 link set of a weight/distance matrix pair, flattened into
// padded struct-of-arrays form for the SIMD kernels (gather indices + per-link
// weight and measured distance). Pad links reference node 0 with zero weight
// and distance so their kernel contributions are exact +0.0.
struct LinkSoA {
  std::vector<std::uint32_t> i, j;
  std::vector<double> w, d;
  std::size_t count = 0;   // real links
  std::size_t padded = 0;  // count rounded up to simd::kLanes
};

// Reusable scratch for smacof_2d_into. Also caches V^+ keyed on the exact
// weight matrix: the pseudoinverse is a pure function of the weights, so a
// repeat of the previous weight pattern (the common fully-connected round)
// skips the Jacobi eigendecomposition with bit-identical results.
struct SmacofWorkspace {
  Matrix v, v_pinv;
  Matrix cached_w;
  bool v_pinv_valid = false;
  LinkSoA links;                   // per-call link SoA
  std::vector<double> vp_pad;      // padded row-major copy of v_pinv
  std::vector<double> x, y;        // SoA iterate (padded, pad lanes zero)
  std::vector<double> bx_x, bx_y;  // B(X) X product (padded)
  std::vector<double> b_pad;       // padded Guttman B matrix
  std::vector<double> dij;         // per-link ||x_i - x_j|| cache (padded)
  std::vector<double> bvals;       // per-link B off-diagonal values (padded)
  std::vector<std::vector<Vec2>> starts;
  SmacofResult scratch;            // per-start solve buffer
  ClassicalMdsWorkspace mds;       // classical-MDS seed + eigen scratch
};

// Workspace variant of smacof_2d: bit-identical results, all scratch in `ws`
// and `out` (no steady-state allocation). `init` may be null.
void smacof_2d_into(SmacofResult& out, const Matrix& dist, const Matrix& w,
                    const SmacofOptions& opts, uwp::Rng& rng,
                    const std::vector<Vec2>* init, SmacofWorkspace& ws);

}  // namespace uwp::core
