// The full 3D localization pipeline (§2.1): depth projection -> weighted
// SMACOF with outlier detection -> translation/rotation/flip disambiguation
// -> 3D positions (leader at the horizontal origin). This is the library's
// primary public entry point; it is signal-free and consumes the outputs of
// the protocol layer (distance matrix), the depth sensors, and the leader's
// dual-mic votes.
#pragma once

#include <vector>

#include "core/ambiguity.hpp"
#include "core/outlier_detection.hpp"
#include "util/geometry.hpp"
#include "util/matrix.hpp"

namespace uwp::core {

struct LocalizationInput {
  // Symmetric NxN pairwise 3D distances (meters); entry ignored when the
  // corresponding weight is 0. Node 0 is the leader, node 1 the pointed
  // (visible) diver.
  Matrix distances;
  // Symmetric link indicator matrix (1 = measured, 0 = missing).
  Matrix weights;
  // Depths from onboard sensors, meters below surface, length N.
  std::vector<double> depths;
  // Bearing from leader to the pointed diver in the output frame (radians);
  // comes from the leader orienting toward node 1 (§2.1.4).
  double pointing_bearing_rad = 0.0;
  // Dual-mic first-arrival votes from divers 2..N-1 at the leader device.
  std::vector<MicVote> votes;
};

struct LocalizationResult {
  std::vector<Vec3> positions;  // leader at (0, 0, depth_0)
  double normalized_stress = 0.0;
  std::vector<Edge> dropped_links;
  bool outliers_suspected = false;
  bool flipped = false;
  int flip_vote_margin = 0;  // |score difference|, proxy for confidence
  // SMACOF iterations spent across the base solve and every outlier-search
  // candidate (OutlierResult::iterations): deterministic solver cost.
  std::int64_t solver_iterations = 0;
};

struct LocalizerOptions {
  OutlierOptions outlier{};
};

// Reusable scratch threaded through the whole solve (projection, SMACOF +
// outlier search, ambiguity resolution). One workspace per thread; results
// are bit-identical to the workspace-free path whether cold or warm.
struct LocalizerWorkspace {
  Matrix d2d;
  OutlierWorkspace outlier;
  OutlierResult topo;
  std::vector<Vec2> pts, mirrored;
};

class Localizer {
 public:
  explicit Localizer(LocalizerOptions opts = {}) : opts_(opts) {}

  // Throws std::invalid_argument on malformed input (shape mismatch, N < 2).
  LocalizationResult localize(const LocalizationInput& input, uwp::Rng& rng) const;

  // Workspace variant: same results, near-zero heap allocation once `ws`
  // and `out` are warm. `warm_init` (optional) seeds the SMACOF base solve
  // with a predicted 2D layout — same frame as the solver's internal
  // coordinates, i.e. a previous round's pre-disambiguation topology or a
  // tracker prediction re-expressed there — replacing the cold classical-MDS
  // + random-restarts seed (and its rng draws).
  void localize_into(LocalizationResult& out, const LocalizationInput& input,
                     uwp::Rng& rng, LocalizerWorkspace& ws,
                     const std::vector<Vec2>* warm_init = nullptr) const;

 private:
  LocalizerOptions opts_;
};

}  // namespace uwp::core
