// Anchor-based localization baseline. The paper's related work (§4) contrasts
// the anchor-free design against conventional systems that trilaterate from
// buoys at known positions; this module implements that comparator so the
// benefit/cost of anchors is measurable inside the same simulator:
// Gauss-Newton range trilateration plus the GDOP metric that predicts how
// anchor geometry amplifies ranging error.
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.hpp"
#include "util/matrix.hpp"

namespace uwp::core {

struct TrilaterationOptions {
  int max_iterations = 50;
  double tolerance_m = 1e-6;
  // Levenberg-Marquardt damping added to the normal equations.
  double damping = 1e-6;
};

struct TrilaterationResult {
  Vec2 position;
  double residual_rms_m = 0.0;  // sqrt(mean squared range residual)
  int iterations = 0;
};

// Reusable Gauss-Newton scratch (normal equations + LU solve buffers, plus
// the padded anchor SoA the residual kernel accumulates over); pass one per
// thread to make repeated solves allocation-free.
struct TrilaterationWorkspace {
  Matrix jtj, lu;
  std::vector<double> jtr, step;
  std::vector<std::size_t> perm;
  std::vector<double> soa_ax, soa_ay, soa_r, soa_mask;
};

// Solve for the 2D position given >= 3 anchors at known positions and range
// measurements to each (horizontal-plane ranges; project first if needed).
// `initial` seeds the iteration (centroid of anchors when nullopt). Returns
// nullopt when the geometry is degenerate (anchors collinear) or the solve
// diverges. `ws` (optional) makes repeated solves allocation-free.
std::optional<TrilaterationResult> trilaterate_2d(
    const std::vector<Vec2>& anchors, const std::vector<double>& ranges,
    const TrilaterationOptions& opts = {}, std::optional<Vec2> initial = std::nullopt,
    TrilaterationWorkspace* ws = nullptr);

// Horizontal dilution of precision at `position` for the anchor set: the
// factor by which 1-sigma ranging noise inflates position error. Infinity
// for degenerate geometry.
double gdop_2d(const std::vector<Vec2>& anchors, Vec2 position);

}  // namespace uwp::core
