#include "core/projection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uwp::core {

Matrix project_to_2d(const Matrix& dist3d, std::span<const double> depths) {
  Matrix out;
  project_to_2d_into(out, dist3d, depths);
  return out;
}

void project_to_2d_into(Matrix& out, const Matrix& dist3d,
                        std::span<const double> depths) {
  const std::size_t n = dist3d.rows();
  if (dist3d.cols() != n || depths.size() != n)
    throw std::invalid_argument("project_to_2d: shape mismatch");
  out.assign(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dh = depths[i] - depths[j];
      const double sq = dist3d(i, j) * dist3d(i, j) - dh * dh;
      const double d = sq > 0.0 ? std::sqrt(sq) : 0.0;
      out(i, j) = out(j, i) = d;
    }
  }
}

Matrix lift_to_3d(const Matrix& dist2d, std::span<const double> depths) {
  const std::size_t n = dist2d.rows();
  if (dist2d.cols() != n || depths.size() != n)
    throw std::invalid_argument("lift_to_3d: shape mismatch");
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dh = depths[i] - depths[j];
      out(i, j) = out(j, i) = std::hypot(dist2d(i, j), dh);
    }
  }
  return out;
}

}  // namespace uwp::core
