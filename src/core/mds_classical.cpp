#include "core/mds_classical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"

namespace uwp::core {

Matrix shortest_path_completion(const Matrix& dist, const Matrix& weights) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n || weights.rows() != n || weights.cols() != n)
    throw std::invalid_argument("shortest_path_completion: shape mismatch");
  constexpr double kInf = 1e18;
  Matrix d(n, n, kInf);
  double max_obs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d(i, i) = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && weights(i, j) > 0.0) {
        d(i, j) = dist(i, j);
        max_obs = std::max(max_obs, dist(i, j));
      }
    }
  }
  // Floyd-Warshall.
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        d(i, j) = std::min(d(i, j), d(i, k) + d(k, j));
  // Unreachable pairs: cap at the largest observed distance.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (d(i, j) >= kInf) d(i, j) = max_obs;
  return d;
}

std::vector<Vec2> classical_mds_2d(const Matrix& dist) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n) throw std::invalid_argument("classical_mds_2d: not square");
  if (n == 0) return {};
  // Double centering: B = -1/2 J D^2 J.
  Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d2(i, j) = dist(i, j) * dist(i, j);
  std::vector<double> row_mean(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_mean[i] += d2(i, j);
    row_mean[i] /= static_cast<double>(n);
    total += row_mean[i];
  }
  total /= static_cast<double>(n);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b(i, j) = -0.5 * (d2(i, j) - row_mean[i] - row_mean[j] + total);

  const EigenResult eig = eigen_symmetric(b);
  std::vector<Vec2> pts(n);
  for (std::size_t axis = 0; axis < 2 && axis < eig.values.size(); ++axis) {
    const double l = std::max(eig.values[axis], 0.0);
    const double s = std::sqrt(l);
    for (std::size_t i = 0; i < n; ++i) {
      const double coord = s * eig.vectors(i, axis);
      if (axis == 0)
        pts[i].x = coord;
      else
        pts[i].y = coord;
    }
  }
  return pts;
}

std::vector<Vec2> classical_mds_2d_weighted(const Matrix& dist, const Matrix& weights) {
  return classical_mds_2d(shortest_path_completion(dist, weights));
}

}  // namespace uwp::core
