#include "core/mds_classical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"
#include "util/simd_kernels.hpp"

namespace uwp::core {

Matrix shortest_path_completion(const Matrix& dist, const Matrix& weights) {
  Matrix out;
  shortest_path_completion_into(out, dist, weights);
  return out;
}

void shortest_path_completion_into(Matrix& out, const Matrix& dist,
                                   const Matrix& weights) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n || weights.rows() != n || weights.cols() != n)
    throw std::invalid_argument("shortest_path_completion: shape mismatch");
  constexpr double kInf = 1e18;
  out.assign(n, n, kInf);
  double max_obs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && weights(i, j) > 0.0) {
        out(i, j) = dist(i, j);
        max_obs = std::max(max_obs, dist(i, j));
      }
    }
  }
  // Floyd-Warshall.
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) = std::min(out(i, j), out(i, k) + out(k, j));
  // Unreachable pairs: cap at the largest observed distance.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (out(i, j) >= kInf) out(i, j) = max_obs;
}

std::vector<Vec2> classical_mds_2d(const Matrix& dist) {
  ClassicalMdsWorkspace ws;
  std::vector<Vec2> out;
  classical_mds_2d_into(out, dist, ws);
  return out;
}

void classical_mds_2d_into(std::vector<Vec2>& out, const Matrix& dist,
                           ClassicalMdsWorkspace& ws) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n) throw std::invalid_argument("classical_mds_2d: not square");
  out.assign(n, Vec2{});
  if (n == 0) return;
  // Double centering: B = -1/2 J D^2 J.
  Matrix& d2 = ws.d2;
  d2.assign(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d2(i, j) = dist(i, j) * dist(i, j);
  std::vector<double>& row_mean = ws.row_mean;
  row_mean.assign(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    row_mean[i] =
        kernels::row_sum<simd::ActiveOps>(d2.row(i).data(), n) / static_cast<double>(n);
    total += row_mean[i];
  }
  total /= static_cast<double>(n);
  Matrix& b = ws.b;
  b.assign(n, n);
  for (std::size_t i = 0; i < n; ++i)
    kernels::center_row<simd::ActiveOps>(b.row(i).data(), d2.row(i).data(), row_mean[i],
                                         row_mean.data(), total, n);

  eigen_symmetric_into(b, ws.eigen.eig, ws.eigen);
  const EigenResult& eig = ws.eigen.eig;
  for (std::size_t axis = 0; axis < 2 && axis < eig.values.size(); ++axis) {
    const double l = std::max(eig.values[axis], 0.0);
    const double s = std::sqrt(l);
    for (std::size_t i = 0; i < n; ++i) {
      const double coord = s * eig.vectors(i, axis);
      if (axis == 0)
        out[i].x = coord;
      else
        out[i].y = coord;
    }
  }
}

std::vector<Vec2> classical_mds_2d_weighted(const Matrix& dist, const Matrix& weights) {
  ClassicalMdsWorkspace ws;
  std::vector<Vec2> out;
  classical_mds_2d_weighted_into(out, dist, weights, ws);
  return out;
}

void classical_mds_2d_weighted_into(std::vector<Vec2>& out, const Matrix& dist,
                                    const Matrix& weights, ClassicalMdsWorkspace& ws) {
  shortest_path_completion_into(ws.completed, dist, weights);
  classical_mds_2d_into(out, ws.completed, ws);
}

}  // namespace uwp::core
