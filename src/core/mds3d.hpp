// Direct 3D weighted SMACOF — the ablation counterpart of the paper's
// depth-projection design (§2.1.1). The paper projects to 2D using depth
// sensors; this solver embeds straight into 3D from raw distances, with the
// depth readings applied as soft constraints (penalty terms) instead of hard
// coordinates. The ablation bench compares the two, demonstrating why the
// projection is the right call when depth sensors are decent.
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.hpp"
#include "util/matrix.hpp"
#include "util/random.hpp"

namespace uwp::core {

struct Smacof3dOptions {
  int max_iterations = 500;
  double rel_tolerance = 1e-9;
  int random_restarts = 2;
  double init_spread = 30.0;
  // Weight of the per-device depth penalty (z_i - h_i)^2 relative to a unit
  // link weight; 0 disables depth anchoring entirely.
  double depth_weight = 4.0;
};

struct Smacof3dResult {
  std::vector<Vec3> positions;
  double stress = 0.0;             // weighted link stress only (m^2)
  double normalized_stress = 0.0;  // sqrt(stress / #links)
  int iterations = 0;
};

// Weighted stress of a 3D configuration (links only, no depth penalty).
double weighted_stress_3d(const std::vector<Vec3>& x, const Matrix& dist,
                          const Matrix& w);

// Minimize sum w_ij (d_ij - ||x_i - x_j||)^2 + depth_weight * sum (z_i-h_i)^2
// by SMACOF iterations with the depth penalty folded into the majorization
// (quadratic in z, handled exactly). `depths` may be empty to skip the
// penalty.
Smacof3dResult smacof_3d(const Matrix& dist, const Matrix& w,
                         const std::vector<double>& depths,
                         const Smacof3dOptions& opts, uwp::Rng& rng);

}  // namespace uwp::core
