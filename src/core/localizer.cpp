#include "core/localizer.hpp"

#include <cmath>
#include <stdexcept>

#include "core/projection.hpp"

namespace uwp::core {

LocalizationResult Localizer::localize(const LocalizationInput& input,
                                       uwp::Rng& rng) const {
  const std::size_t n = input.distances.rows();
  if (n < 2) throw std::invalid_argument("Localizer: need at least 2 devices");
  if (input.distances.cols() != n || input.weights.rows() != n ||
      input.weights.cols() != n || input.depths.size() != n)
    throw std::invalid_argument("Localizer: shape mismatch");

  // Step 1: project to the horizontal plane using depth readings (§2.1.1).
  const Matrix d2d = project_to_2d(input.distances, input.depths);

  // Step 2: topology via weighted SMACOF + Algorithm 1 outlier handling.
  const OutlierResult topo =
      localize_with_outlier_detection(d2d, input.weights, opts_.outlier, rng);

  // Step 3: fix translation, rotation, and flip (§2.1.4).
  std::vector<Vec2> pts = translate_leader_to_origin(topo.positions);
  pts = resolve_rotation(std::move(pts), input.pointing_bearing_rad);
  const FlipDecision flip = resolve_flip(pts, input.votes);

  LocalizationResult out;
  out.normalized_stress = topo.normalized_stress;
  out.dropped_links = topo.dropped_links;
  out.outliers_suspected = topo.outliers_suspected;
  out.flipped = flip.flipped;
  out.flip_vote_margin =
      static_cast<int>(std::abs(flip.score_original - flip.score_flipped));

  out.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    out.positions[i] = {flip.positions[i].x, flip.positions[i].y, input.depths[i]};
  return out;
}

}  // namespace uwp::core
