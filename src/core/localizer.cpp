#include "core/localizer.hpp"

#include <cmath>
#include <stdexcept>

#include "core/projection.hpp"

namespace uwp::core {

LocalizationResult Localizer::localize(const LocalizationInput& input,
                                       uwp::Rng& rng) const {
  LocalizerWorkspace ws;
  LocalizationResult out;
  localize_into(out, input, rng, ws);
  return out;
}

void Localizer::localize_into(LocalizationResult& out, const LocalizationInput& input,
                              uwp::Rng& rng, LocalizerWorkspace& ws,
                              const std::vector<Vec2>* warm_init) const {
  const std::size_t n = input.distances.rows();
  if (n < 2) throw std::invalid_argument("Localizer: need at least 2 devices");
  if (input.distances.cols() != n || input.weights.rows() != n ||
      input.weights.cols() != n || input.depths.size() != n)
    throw std::invalid_argument("Localizer: shape mismatch");

  // Step 1: project to the horizontal plane using depth readings (§2.1.1).
  project_to_2d_into(ws.d2d, input.distances, input.depths);

  // Step 2: topology via weighted SMACOF + Algorithm 1 outlier handling
  // (warm started when the caller has a predicted layout).
  localize_with_outlier_detection_into(ws.topo, ws.d2d, input.weights, opts_.outlier,
                                       rng, ws.outlier, warm_init);

  // Step 3: fix translation, rotation, and flip (§2.1.4).
  std::vector<Vec2>& pts = ws.pts;
  pts.assign(ws.topo.positions.begin(), ws.topo.positions.end());
  translate_leader_to_origin_inplace(pts);
  resolve_rotation_inplace(pts, input.pointing_bearing_rad);
  flip_configuration_into(ws.mirrored, pts);
  const double score_original = flip_vote_score(pts, input.votes);
  const double score_flipped = flip_vote_score(ws.mirrored, input.votes);
  const bool flipped = score_flipped > score_original;
  const std::vector<Vec2>& chosen = flipped ? ws.mirrored : pts;

  out.normalized_stress = ws.topo.normalized_stress;
  out.dropped_links = ws.topo.dropped_links;
  out.outliers_suspected = ws.topo.outliers_suspected;
  out.solver_iterations = ws.topo.iterations;
  out.flipped = flipped;
  out.flip_vote_margin = static_cast<int>(std::abs(score_original - score_flipped));

  out.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    out.positions[i] = {chosen[i].x, chosen[i].y, input.depths[i]};
}

}  // namespace uwp::core
