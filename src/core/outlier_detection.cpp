#include "core/outlier_detection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace uwp::core {

namespace {

// In-place lexicographic advance of a k-subset of [0, n) (k >= 1). Visits
// subsets in exactly the order subsets_of_size materializes them.
bool advance_subset(std::vector<std::size_t>& idx, std::size_t n) {
  const std::size_t k = idx.size();
  std::size_t i = k;
  while (i-- > 0) {
    if (idx[i] != i + n - k) {
      ++idx[i];
      for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
    if (i == 0) return false;
  }
  return false;
}

}  // namespace

std::vector<std::vector<std::size_t>> subsets_of_size(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  // Built on the same advance the search loops use in place, so the
  // enumeration order cannot drift apart.
  do {
    out.push_back(idx);
  } while (advance_subset(idx, n));
  return out;
}

OutlierResult localize_with_outlier_detection(const Matrix& dist, const Matrix& weights,
                                              const OutlierOptions& opts, uwp::Rng& rng,
                                              const std::vector<Vec2>* init) {
  OutlierWorkspace ws;
  OutlierResult out;
  localize_with_outlier_detection_into(out, dist, weights, opts, rng, ws, init);
  return out;
}

void localize_with_outlier_detection_into(OutlierResult& out, const Matrix& dist,
                                          const Matrix& weights,
                                          const OutlierOptions& opts, uwp::Rng& rng,
                                          OutlierWorkspace& ws,
                                          const std::vector<Vec2>* init) {
  const std::size_t n = dist.rows();
  std::vector<Edge>& links = ws.links;
  links.clear();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (weights(i, j) > 0.0) links.emplace_back(i, j);

  out.weights = weights;
  out.dropped_links.clear();
  out.outliers_suspected = false;

  SmacofOptions warm = opts.smacof;
  warm.random_restarts = 0;

  // Initial solve on all links. A caller-provided init (tracker-predicted
  // geometry) replaces the cold classical-MDS seed and skips the random
  // restarts — and with them every rng draw of the solve.
  SmacofResult& base = ws.base;
  if (init != nullptr)
    smacof_2d_into(base, dist, weights, warm, rng, init, ws.smacof_base);
  else
    smacof_2d_into(base, dist, weights, opts.smacof, rng, nullptr, ws.smacof_base);
  out.positions.assign(base.positions.begin(), base.positions.end());
  out.normalized_stress = base.normalized_stress;
  out.iterations = base.iterations;
  if (base.normalized_stress < opts.stress_threshold) return;

  out.outliers_suspected = true;
  double e0 = base.normalized_stress;
  std::vector<Vec2>& p0 = ws.p0;
  p0.assign(base.positions.begin(), base.positions.end());
  std::vector<std::size_t>& dropped_so_far = ws.dropped_so_far;  // links[] indices
  dropped_so_far.clear();

  // Candidate pool: all links while the subset enumeration stays cheap;
  // past max_suspect_links, only the worst-fitting links of the initial
  // solve are eligible (see OutlierOptions::max_suspect_links). Every
  // candidate solve is a warm start from the current best layout (no random
  // restarts, no rng draws) with the realizability check deferred until a
  // candidate actually improves — a warm solve is cheaper than the check.
  const bool pruned = links.size() > opts.max_suspect_links;
  std::vector<std::size_t>& pool = ws.pool;
  pool.resize(links.size());
  for (std::size_t li = 0; li < links.size(); ++li) pool[li] = li;
  if (pruned) {
    std::vector<double>& residual = ws.residual;
    residual.resize(links.size());
    for (std::size_t li = 0; li < links.size(); ++li) {
      const auto [a, b] = links[li];
      residual[li] = std::abs(distance(base.positions[a], base.positions[b]) -
                              dist(a, b));
    }
    std::sort(pool.begin(), pool.end(), [&](std::size_t x, std::size_t y) {
      if (residual[x] != residual[y]) return residual[x] > residual[y];
      return x < y;  // deterministic tie-break
    });
    pool.resize(opts.max_suspect_links);
    std::sort(pool.begin(), pool.end());  // keep enumeration order stable
  }
  // Warm candidate solves draw nothing from `rng`, so either regime can fan
  // candidates across a pool; the reduction below walks candidates in
  // enumeration order, making the result bit-identical at any thread count.
  const std::size_t search_threads =
      opts.search_threads != 1 ? ThreadPool::resolve_thread_count(opts.search_threads)
                               : 1;

  Matrix& w = ws.w;
  std::vector<Edge>& remaining = ws.remaining;
  std::vector<Vec2>& p_min = ws.p_min;
  SmacofResult& cand = ws.cand;

  for (int ndrop = 1; ndrop <= opts.max_outliers; ++ndrop) {
    double e_min = e0;
    p_min.assign(p0.begin(), p0.end());
    std::vector<std::size_t>& best_subset = ws.best_subset;
    best_subset.clear();

    const std::size_t k = static_cast<std::size_t>(ndrop);
    if (k > pool.size()) continue;
    std::vector<std::size_t>& slots = ws.subset_slots;
    slots.resize(k);
    for (std::size_t i = 0; i < k; ++i) slots[i] = i;
    std::vector<std::size_t>& subset = ws.subset;

    if (search_threads > 1) {
      // Materialize this level's candidate subsets (link indices, flattened
      // k at a time, in enumeration order).
      std::vector<std::size_t>& flat = ws.flat_subsets;
      flat.clear();
      bool more = true;
      while (more) {
        for (std::size_t i = 0; i < k; ++i) flat.push_back(pool[slots[i]]);
        more = advance_subset(slots, pool.size());
      }
      const std::size_t m = flat.size() / k;
      ws.cand_stress.resize(m);
      ws.cand_iters.resize(m);
      if (!ws.search_pool || ws.search_pool->size() != search_threads)
        ws.search_pool = std::make_unique<ThreadPool>(search_threads);
      if (ws.lanes.size() < ws.search_pool->size())
        ws.lanes.resize(ws.search_pool->size());
      ws.search_pool->parallel_for_lanes(m, [&](std::size_t lane_idx, std::size_t ci) {
        OutlierWorkspace::SearchLane& lane = ws.lanes[lane_idx];
        lane.w = weights;
        for (std::size_t t = 0; t < k; ++t) {
          const Edge& e = links[flat[ci * k + t]];
          lane.w(e.first, e.second) = 0.0;
          lane.w(e.second, e.first) = 0.0;
        }
        smacof_2d_into(lane.result, dist, lane.w, warm, lane.rng, &p0, lane.smacof);
        ws.cand_stress[ci] = lane.result.normalized_stress;
        ws.cand_iters[ci] = lane.result.iterations;
      });
      // Integer sum in enumeration order: thread-count invariant.
      for (std::size_t ci = 0; ci < m; ++ci) out.iterations += ws.cand_iters[ci];
      // Serial reduction in enumeration order, replicating the serial
      // accept logic (including when realizability gets checked).
      std::size_t best_ci = std::numeric_limits<std::size_t>::max();
      for (std::size_t ci = 0; ci < m; ++ci) {
        const double ns = ws.cand_stress[ci];
        const bool significant = e0 - ns > opts.drop_ratio * e0;
        if (!significant || ns >= e_min) continue;
        subset.assign(flat.begin() + static_cast<std::ptrdiff_t>(ci * k),
                      flat.begin() + static_cast<std::ptrdiff_t>((ci + 1) * k));
        remaining.clear();
        for (std::size_t li = 0; li < links.size(); ++li)
          if (std::find(subset.begin(), subset.end(), li) == subset.end())
            remaining.push_back(links[li]);
        if (!is_uniquely_realizable_2d(n, remaining)) continue;
        e_min = ns;
        best_ci = ci;
      }
      if (best_ci != std::numeric_limits<std::size_t>::max()) {
        subset.assign(flat.begin() + static_cast<std::ptrdiff_t>(best_ci * k),
                      flat.begin() + static_cast<std::ptrdiff_t>((best_ci + 1) * k));
        best_subset = subset;
        // Re-solve the winner to recover its layout; the warm solve is
        // deterministic, so this reproduces the lane's result exactly.
        w = weights;
        for (std::size_t li : subset) {
          w(links[li].first, links[li].second) = 0.0;
          w(links[li].second, links[li].first) = 0.0;
        }
        smacof_2d_into(cand, dist, w, warm, rng, &p0, ws.smacof_cand);
        out.iterations += cand.iterations;
        p_min.assign(cand.positions.begin(), cand.positions.end());
      }
    } else {
      bool more = true;
      while (more) {
        subset.resize(k);
        for (std::size_t i = 0; i < k; ++i) subset[i] = pool[slots[i]];
        more = advance_subset(slots, pool.size());

        // Build the candidate weight matrix with this subset removed.
        w = weights;
        remaining.clear();
        for (std::size_t li = 0; li < links.size(); ++li) {
          const bool dropped =
              std::find(subset.begin(), subset.end(), li) != subset.end();
          if (dropped) {
            w(links[li].first, links[li].second) = 0.0;
            w(links[li].second, links[li].first) = 0.0;
          } else {
            remaining.push_back(links[li]);
          }
        }
        smacof_2d_into(cand, dist, w, warm, rng, &p0, ws.smacof_cand);
        out.iterations += cand.iterations;
        const bool significant = e0 - cand.normalized_stress > opts.drop_ratio * e0;
        if (significant && cand.normalized_stress < e_min) {
          // Only accept when the remaining graph is still uniquely
          // realizable — otherwise the "improvement" is just the looser
          // problem. Checking is pricier than a warm-started solve, so it
          // waits for candidates that actually improve the stress.
          if (!is_uniquely_realizable_2d(n, remaining)) continue;
          e_min = cand.normalized_stress;
          p_min.assign(cand.positions.begin(), cand.positions.end());
          best_subset = subset;
        }
      }
    }

    if (e_min < opts.stress_threshold) {
      out.positions.assign(p_min.begin(), p_min.end());
      out.normalized_stress = e_min;
      for (std::size_t li : best_subset) {
        out.dropped_links.push_back(links[li]);
        out.weights(links[li].first, links[li].second) = 0.0;
        out.weights(links[li].second, links[li].first) = 0.0;
      }
      return;
    }
    // Keep the best found so far and try dropping a larger subset.
    if (!best_subset.empty()) {
      e0 = e_min;
      p0.assign(p_min.begin(), p_min.end());
      dropped_so_far = best_subset;
    }
  }

  out.positions.assign(p0.begin(), p0.end());
  out.normalized_stress = e0;
  for (std::size_t li : dropped_so_far) {
    out.dropped_links.push_back(links[li]);
    out.weights(links[li].first, links[li].second) = 0.0;
    out.weights(links[li].second, links[li].first) = 0.0;
  }
}

}  // namespace uwp::core
