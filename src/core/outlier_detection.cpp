#include "core/outlier_detection.hpp"

#include <algorithm>
#include <cmath>

namespace uwp::core {

std::vector<std::vector<std::size_t>> subsets_of_size(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> idx(k);
  // Standard lexicographic combination enumeration.
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    out.push_back(idx);
    // Advance.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
  }
}

OutlierResult localize_with_outlier_detection(const Matrix& dist, const Matrix& weights,
                                              const OutlierOptions& opts, uwp::Rng& rng) {
  const std::size_t n = dist.rows();
  const std::vector<Edge> links = edges_from_weights(weights);

  OutlierResult out;
  out.weights = weights;

  // Initial solve on all links.
  SmacofResult base = smacof_2d(dist, weights, opts.smacof, rng);
  out.positions = base.positions;
  out.normalized_stress = base.normalized_stress;
  if (base.normalized_stress < opts.stress_threshold) return out;

  out.outliers_suspected = true;
  double e0 = base.normalized_stress;
  std::vector<Vec2> p0 = base.positions;
  std::vector<std::size_t> dropped_so_far;  // indices into `links`

  // Candidate pool: all links while the subset enumeration stays cheap;
  // past max_suspect_links, only the worst-fitting links of the initial
  // solve are eligible (see OutlierOptions::max_suspect_links). The pruned
  // regime also swaps the per-candidate solve to a warm start from the
  // all-links layout (no random restarts) and defers the realizability
  // check until a candidate actually improves — together this turns an
  // O(C(L, 3)) minutes-scale search at N = 20 into ~a second without
  // touching the paper-scale (N <= 8) behavior at all.
  const bool pruned = links.size() > opts.max_suspect_links;
  std::vector<std::size_t> pool(links.size());
  for (std::size_t li = 0; li < links.size(); ++li) pool[li] = li;
  if (pruned) {
    std::vector<double> residual(links.size());
    for (std::size_t li = 0; li < links.size(); ++li) {
      const auto [a, b] = links[li];
      residual[li] = std::abs(distance(base.positions[a], base.positions[b]) -
                              dist(a, b));
    }
    std::sort(pool.begin(), pool.end(), [&](std::size_t x, std::size_t y) {
      if (residual[x] != residual[y]) return residual[x] > residual[y];
      return x < y;  // deterministic tie-break
    });
    pool.resize(opts.max_suspect_links);
    std::sort(pool.begin(), pool.end());  // keep enumeration order stable
  }
  SmacofOptions warm = opts.smacof;
  warm.random_restarts = 0;

  for (int ndrop = 1; ndrop <= opts.max_outliers; ++ndrop) {
    double e_min = e0;
    std::vector<Vec2> p_min = p0;
    std::vector<std::size_t> best_subset;

    for (std::vector<std::size_t>& subset :
         subsets_of_size(pool.size(), static_cast<std::size_t>(ndrop))) {
      for (std::size_t& m : subset) m = pool[m];  // pool slot -> link index
      // Build the candidate weight matrix with this subset removed.
      Matrix w = weights;
      std::vector<Edge> remaining;
      remaining.reserve(links.size() - subset.size());
      for (std::size_t li = 0; li < links.size(); ++li) {
        const bool dropped =
            std::find(subset.begin(), subset.end(), li) != subset.end();
        if (dropped) {
          w(links[li].first, links[li].second) = 0.0;
          w(links[li].second, links[li].first) = 0.0;
        } else {
          remaining.push_back(links[li]);
        }
      }
      // Only accept when the remaining graph is still uniquely realizable —
      // otherwise the "improvement" is just the looser problem. Checking is
      // pricier than a warm-started solve, so the pruned regime postpones
      // it to candidates that actually improve the stress.
      if (!pruned && !is_uniquely_realizable_2d(n, remaining)) continue;

      const SmacofResult cand =
          pruned ? smacof_2d(dist, w, warm, rng, p0)
                 : smacof_2d(dist, w, opts.smacof, rng);
      const bool significant = e0 - cand.normalized_stress > opts.drop_ratio * e0;
      if (significant && cand.normalized_stress < e_min) {
        if (pruned && !is_uniquely_realizable_2d(n, remaining)) continue;
        e_min = cand.normalized_stress;
        p_min = cand.positions;
        best_subset = subset;
      }
    }

    if (e_min < opts.stress_threshold) {
      out.positions = p_min;
      out.normalized_stress = e_min;
      for (std::size_t li : best_subset) {
        out.dropped_links.push_back(links[li]);
        out.weights(links[li].first, links[li].second) = 0.0;
        out.weights(links[li].second, links[li].first) = 0.0;
      }
      return out;
    }
    // Keep the best found so far and try dropping a larger subset.
    if (!best_subset.empty()) {
      e0 = e_min;
      p0 = p_min;
      dropped_so_far = best_subset;
    }
  }

  out.positions = p0;
  out.normalized_stress = e0;
  for (std::size_t li : dropped_so_far) {
    out.dropped_links.push_back(links[li]);
    out.weights(links[li].first, links[li].second) = 0.0;
    out.weights(links[li].second, links[li].first) = 0.0;
  }
  return out;
}

}  // namespace uwp::core
