// Smart-device IMU dead-reckoning drift model. The paper's related-work
// discussion notes that consumer IMUs drift within seconds underwater,
// ruling out inertial anchor-free localization — this model quantifies that
// claim (double-integrated accelerometer noise + bias random walk).
#pragma once

#include <vector>

#include "util/geometry.hpp"
#include "util/random.hpp"

namespace uwp::sensors {

struct ImuModel {
  double accel_noise_mps2 = 0.03;      // white accelerometer noise (1 sigma)
  double accel_bias_mps2 = 0.02;       // initial bias magnitude
  double bias_walk_mps2_per_s = 0.002; // bias random walk
  double sample_rate_hz = 100.0;
};

// Simulated position-error magnitude over time for a stationary device:
// returns |position error| (m) sampled at 1 Hz for `duration_s` seconds.
std::vector<double> dead_reckoning_drift(const ImuModel& m, double duration_s,
                                         uwp::Rng& rng);

// Time (s) until drift exceeds `threshold_m` (duration_s if never).
double time_to_drift(const ImuModel& m, double threshold_m, double duration_s,
                     uwp::Rng& rng);

}  // namespace uwp::sensors
