// Leader pointing/orientation model (§2.1.4, Fig 16). The dive leader
// orients the device toward the visible diver; the paper measures a mean
// human pointing error of ~5 degrees using a camera + checkerboard rig.
// This model produces noisy pointed bearings and reproduces the camera-based
// error measurement.
#pragma once

#include "util/geometry.hpp"
#include "util/random.hpp"

namespace uwp::sensors {

struct PointingModel {
  // Gaussian angular error, calibrated so the mean |error| ~ 5 degrees
  // (Fig 16 averages 5.0 over two users and several distances).
  double sigma_deg = 6.3;  // mean |N(0, s)| = s * sqrt(2/pi) -> 5.0 deg
  // Small distance dependence: pointing degrades slightly with range.
  double sigma_per_meter_deg = 0.05;

  // A pointed bearing toward a target at `true_bearing_rad` and `range_m`.
  double point(double true_bearing_rad, double range_m, uwp::Rng& rng) const;
};

// Camera-based orientation-error measurement (Fig 16): angle between the
// camera-to-checkerboard vector and the camera frame center ray, both in
// world coordinates. Returns degrees.
double camera_orientation_error_deg(uwp::Vec3 camera, uwp::Vec3 checkerboard,
                                    uwp::Vec3 frame_center_point);

}  // namespace uwp::sensors
