#include "sensors/imu_drift.hpp"

#include <cmath>

namespace uwp::sensors {

std::vector<double> dead_reckoning_drift(const ImuModel& m, double duration_s,
                                         uwp::Rng& rng) {
  const double dt = 1.0 / m.sample_rate_hz;
  const std::size_t steps = static_cast<std::size_t>(duration_s * m.sample_rate_hz);
  double bias_x = rng.normal(0.0, m.accel_bias_mps2);
  double bias_y = rng.normal(0.0, m.accel_bias_mps2);
  double vx = 0.0, vy = 0.0, px = 0.0, py = 0.0;

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(duration_s) + 1);
  const std::size_t per_second = static_cast<std::size_t>(m.sample_rate_hz);
  for (std::size_t i = 0; i < steps; ++i) {
    const double ax = bias_x + rng.normal(0.0, m.accel_noise_mps2);
    const double ay = bias_y + rng.normal(0.0, m.accel_noise_mps2);
    vx += ax * dt;
    vy += ay * dt;
    px += vx * dt;
    py += vy * dt;
    bias_x += rng.normal(0.0, m.bias_walk_mps2_per_s * dt);
    bias_y += rng.normal(0.0, m.bias_walk_mps2_per_s * dt);
    if ((i + 1) % per_second == 0) out.push_back(std::hypot(px, py));
  }
  return out;
}

double time_to_drift(const ImuModel& m, double threshold_m, double duration_s,
                     uwp::Rng& rng) {
  const std::vector<double> drift = dead_reckoning_drift(m, duration_s, rng);
  for (std::size_t i = 0; i < drift.size(); ++i)
    if (drift[i] > threshold_m) return static_cast<double>(i + 1);
  return duration_s;
}

}  // namespace uwp::sensors
