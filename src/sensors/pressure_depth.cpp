#include "sensors/pressure_depth.hpp"

#include <algorithm>

namespace uwp::sensors {

double depth_from_pressure(double pressure_pa, const HydrostaticModel& m) {
  const double h =
      (pressure_pa - m.surface_pressure_pa) / (m.water_density_kgm3 * m.gravity_mps2);
  return std::max(h, 0.0);
}

double pressure_at_depth(double depth_m, const HydrostaticModel& m) {
  return m.surface_pressure_pa +
         std::max(depth_m, 0.0) * m.water_density_kgm3 * m.gravity_mps2;
}

}  // namespace uwp::sensors
