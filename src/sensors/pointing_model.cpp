#include "sensors/pointing_model.hpp"

#include <cmath>

namespace uwp::sensors {

double PointingModel::point(double true_bearing_rad, double range_m,
                            uwp::Rng& rng) const {
  const double sigma = sigma_deg + sigma_per_meter_deg * range_m;
  const double err_rad = uwp::deg_to_rad(rng.normal(0.0, sigma));
  return uwp::wrap_angle(true_bearing_rad + err_rad);
}

double camera_orientation_error_deg(uwp::Vec3 camera, uwp::Vec3 checkerboard,
                                    uwp::Vec3 frame_center_point) {
  const uwp::Vec3 v_pc = checkerboard - camera;
  const uwp::Vec3 v_dc = frame_center_point - camera;
  const double denom = v_pc.norm() * v_dc.norm();
  if (denom <= 0.0) return 0.0;
  double cosang = v_pc.dot(v_dc) / denom;
  cosang = std::max(-1.0, std::min(1.0, cosang));
  return uwp::rad_to_deg(std::acos(cosang));
}

}  // namespace uwp::sensors
