// Error models for the two depth sources the paper evaluates (Fig 13b):
// the Apple Watch Ultra depth gauge (0.15 +/- 0.11 m error) and a phone
// pressure sensor inside a waterproof pouch (0.42 +/- 0.18 m, slower and
// biased because the pouch partially isolates the sensor).
#pragma once

#include "sensors/pressure_depth.hpp"
#include "util/random.hpp"

namespace uwp::sensors {

struct DepthSensorModel {
  // Mean absolute error magnitude and its spread (fitted to Fig 13b).
  double bias_m = 0.0;        // systematic offset
  double noise_sigma_m = 0.0; // per-reading jitter
  double quantization_m = 0.0;

  static DepthSensorModel watch_ultra_gauge();
  static DepthSensorModel phone_pressure_in_pouch();

  // One reading at the given true depth.
  double read(double true_depth_m, uwp::Rng& rng) const;

  // Average of `n` consecutive readings (the paper holds 30 s per depth).
  double read_averaged(double true_depth_m, std::size_t n, uwp::Rng& rng) const;
};

// Simulate a phone pressure sensor end to end: true depth -> pressure ->
// pouch bias/noise on the raw Pascals -> depth conversion.
double phone_pressure_reading(double true_depth_m, uwp::Rng& rng,
                              const HydrostaticModel& hydro = {});

}  // namespace uwp::sensors
