// Hydrostatic pressure <-> depth conversion (§3.1): h = (P - P0) / (rho g),
// the formula the paper uses to turn a phone's barometer reading into depth.
#pragma once

namespace uwp::sensors {

struct HydrostaticModel {
  double water_density_kgm3 = 997.0;     // fresh water, paper's value
  double gravity_mps2 = 9.81;
  double surface_pressure_pa = 101325.0;  // sea-level atmosphere
};

// Depth (m) for an absolute pressure reading (Pa). Negative readings (above
// the surface) clamp to 0.
double depth_from_pressure(double pressure_pa, const HydrostaticModel& m = {});

// Absolute pressure (Pa) at a given depth (m).
double pressure_at_depth(double depth_m, const HydrostaticModel& m = {});

}  // namespace uwp::sensors
