#include "sensors/depth_sensor_model.hpp"

#include <algorithm>
#include <cmath>

namespace uwp::sensors {

DepthSensorModel DepthSensorModel::watch_ultra_gauge() {
  DepthSensorModel m;
  // Average error 0.15 +/- 0.11 m across 0-9 m (Fig 13b).
  m.bias_m = 0.10;
  m.noise_sigma_m = 0.11;
  m.quantization_m = 0.01;  // Oceanic+ reports centimeters
  return m;
}

DepthSensorModel DepthSensorModel::phone_pressure_in_pouch() {
  DepthSensorModel m;
  // Average error 0.42 +/- 0.18 m: the pouch's trapped air biases the
  // barometer low and couples slowly to ambient pressure.
  m.bias_m = -0.38;
  m.noise_sigma_m = 0.18;
  m.quantization_m = 0.02;
  return m;
}

double DepthSensorModel::read(double true_depth_m, uwp::Rng& rng) const {
  double v = true_depth_m + bias_m + rng.normal(0.0, noise_sigma_m);
  if (quantization_m > 0.0) v = std::round(v / quantization_m) * quantization_m;
  return std::max(v, 0.0);
}

double DepthSensorModel::read_averaged(double true_depth_m, std::size_t n,
                                       uwp::Rng& rng) const {
  if (n == 0) return read(true_depth_m, rng);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += read(true_depth_m, rng);
  return acc / static_cast<double>(n);
}

double phone_pressure_reading(double true_depth_m, uwp::Rng& rng,
                              const HydrostaticModel& hydro) {
  const double true_pa = pressure_at_depth(true_depth_m, hydro);
  // Pouch effects in raw Pascals: low bias + noise (~0.4 m ~= 3.9 kPa).
  const double measured_pa = true_pa - 3700.0 + rng.normal(0.0, 1760.0);
  return depth_from_pressure(measured_pa, hydro);
}

}  // namespace uwp::sensors
