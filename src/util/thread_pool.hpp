// Fixed-size work-queue thread pool shared by the Monte-Carlo sweep engine
// and any future batch workload. Deliberately simple — a mutex-guarded FIFO,
// no work stealing — because sweep trials are coarse (milliseconds to
// seconds each) and queue contention is negligible at that granularity.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <queue>
#include <thread>
#include <vector>

namespace uwp {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; runs on some worker, in FIFO order of submission.
  void submit(std::function<void()> task);

  // Block until the queue is empty and every worker is idle.
  void wait_idle();

  // Run body(i) for i in [0, n) across the pool and block until done.
  // Indices are handed out dynamically (atomic counter), so load imbalance
  // between trials self-corrects. If any invocation throws, the first
  // exception is rethrown here after all workers finish. Must be called
  // from outside the pool's own workers (no nesting).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Like parallel_for, but the body also receives the executing lane index
  // (0 .. min(size(), n) - 1; each lane is one submitted worker task), so
  // callers can maintain per-lane scratch state without locking.
  void parallel_for_lanes(std::size_t n,
                          const std::function<void(std::size_t lane, std::size_t i)>& body);

  // Resolve the `threads` convention used across the codebase: 0 means "all
  // hardware threads", anything else is taken literally (min 1).
  static std::size_t resolve_thread_count(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;   // signals workers: task available / stop
  std::condition_variable cv_idle_;   // signals waiters: pool drained
  std::size_t active_ = 0;            // tasks currently executing
  bool stop_ = false;
};

}  // namespace uwp
