// Portable 4-lane double SIMD for the solver hot-path kernels.
//
// One virtual register type per backend — `V4` holds 4 doubles — with a
// deliberately tiny operation set (load/store/broadcast, +,-,*,/, sqrt,
// lane-wise max / greater-than select, and ONE fixed-order horizontal sum).
// Three backends sit behind the same functions:
//
//   * Avx2Ops   — __m256d            (x86_64, compiled with -mavx2)
//   * NeonOps   — 2 x float64x2_t    (aarch64)
//   * ScalarOps — double[4]          (reference; also the UWP_SIMD=off build)
//
// The semantics contract that makes UWP_SIMD=on/off builds bit-identical:
// every lane operation is exactly one IEEE-754 double operation (correctly
// rounded, no fused multiply-add — the build pins -ffp-contract=off), and
// the only cross-lane operation, hsum, combines lanes in one fixed order:
//
//   hsum(v) = (v0 + v1) + (v2 + v3)
//
// Kernels built on this set (src/util/simd_kernels.hpp) therefore produce
// the same bits on every backend, provided they process data in the same
// 4-lane blocks on every backend — which they do by construction, because
// the blocking is written once against this interface. CI enforces the
// contract by diffing a UWP_SIMD=off build's metrics against the SIMD
// build's.
//
// `ActiveOps` is the backend selected at configure time; `kBackendName`
// ("avx2" / "neon" / "scalar") is what benches record so BENCH_*.json
// entries are comparable across runners.
#pragma once

#include <cmath>
#include <cstddef>

#if !defined(UWP_SIMD_OFF) && defined(__AVX2__)
#define UWP_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(UWP_SIMD_OFF) && defined(__aarch64__) && defined(__ARM_NEON)
#define UWP_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace uwp::simd {

inline constexpr std::size_t kLanes = 4;

// Round `n` up to a whole number of 4-lane blocks. Kernels require padded
// buffers so full-width loads never read past the logical end; pad slots
// must hold values that make the padded lanes exact no-ops (zeros).
inline constexpr std::size_t padded(std::size_t n) {
  return (n + kLanes - 1) & ~(kLanes - 1);
}

// --- scalar reference backend ----------------------------------------------

struct ScalarOps {
  static constexpr const char* kName = "scalar";
  struct V4 {
    double v[4];
  };

  static V4 zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static V4 set1(double x) { return {{x, x, x, x}}; }
  static V4 load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static void store(double* p, V4 a) {
    p[0] = a.v[0];
    p[1] = a.v[1];
    p[2] = a.v[2];
    p[3] = a.v[3];
  }
  static V4 add(V4 a, V4 b) {
    return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]}};
  }
  static V4 sub(V4 a, V4 b) {
    return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2], a.v[3] - b.v[3]}};
  }
  static V4 mul(V4 a, V4 b) {
    return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2], a.v[3] * b.v[3]}};
  }
  static V4 div(V4 a, V4 b) {
    return {{a.v[0] / b.v[0], a.v[1] / b.v[1], a.v[2] / b.v[2], a.v[3] / b.v[3]}};
  }
  static V4 sqrt(V4 a) {
    return {{std::sqrt(a.v[0]), std::sqrt(a.v[1]), std::sqrt(a.v[2]),
             std::sqrt(a.v[3])}};
  }
  // Lane-wise `a < b ? b : a` — the std::max(a, b) argument order, exact for
  // all non-NaN inputs on every backend.
  static V4 max(V4 a, V4 b) {
    V4 r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] < b.v[i] ? b.v[i] : a.v[i];
    return r;
  }
  // Lane-wise `x > y ? a : b`.
  static V4 select_gt(V4 x, V4 y, V4 a, V4 b) {
    V4 r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = x.v[i] > y.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static double hsum(V4 a) { return (a.v[0] + a.v[1]) + (a.v[2] + a.v[3]); }
};

// --- AVX2 backend -----------------------------------------------------------

#if defined(UWP_SIMD_AVX2)
struct Avx2Ops {
  static constexpr const char* kName = "avx2";
  struct V4 {
    __m256d v;
  };

  static V4 zero() { return {_mm256_setzero_pd()}; }
  static V4 set1(double x) { return {_mm256_set1_pd(x)}; }
  static V4 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void store(double* p, V4 a) { _mm256_storeu_pd(p, a.v); }
  static V4 add(V4 a, V4 b) { return {_mm256_add_pd(a.v, b.v)}; }
  static V4 sub(V4 a, V4 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  static V4 mul(V4 a, V4 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static V4 div(V4 a, V4 b) { return {_mm256_div_pd(a.v, b.v)}; }
  static V4 sqrt(V4 a) { return {_mm256_sqrt_pd(a.v)}; }
  // vmaxpd(b, a) returns b when a < b and a otherwise (second operand on
  // equality/NaN) == the scalar backend's `a < b ? b : a`.
  static V4 max(V4 a, V4 b) { return {_mm256_max_pd(b.v, a.v)}; }
  static V4 select_gt(V4 x, V4 y, V4 a, V4 b) {
    const __m256d m = _mm256_cmp_pd(x.v, y.v, _CMP_GT_OQ);
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }
  static double hsum(V4 a) {
    const __m128d lo = _mm256_castpd256_pd128(a.v);     // [v0, v1]
    const __m128d hi = _mm256_extractf128_pd(a.v, 1);   // [v2, v3]
    const __m128d s01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));  // v0 + v1
    const __m128d s23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));  // v2 + v3
    return _mm_cvtsd_f64(_mm_add_sd(s01, s23));
  }
};
using ActiveOps = Avx2Ops;

// --- NEON backend -----------------------------------------------------------

#elif defined(UWP_SIMD_NEON)
struct NeonOps {
  static constexpr const char* kName = "neon";
  struct V4 {
    float64x2_t lo, hi;
  };

  static V4 zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static V4 set1(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
  static V4 load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
  static void store(double* p, V4 a) {
    vst1q_f64(p, a.lo);
    vst1q_f64(p + 2, a.hi);
  }
  static V4 add(V4 a, V4 b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static V4 sub(V4 a, V4 b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  static V4 mul(V4 a, V4 b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  static V4 div(V4 a, V4 b) {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }
  static V4 sqrt(V4 a) { return {vsqrtq_f64(a.lo), vsqrtq_f64(a.hi)}; }
  static V4 max(V4 a, V4 b) {
    const uint64x2_t mlo = vcltq_f64(a.lo, b.lo);
    const uint64x2_t mhi = vcltq_f64(a.hi, b.hi);
    return {vbslq_f64(mlo, b.lo, a.lo), vbslq_f64(mhi, b.hi, a.hi)};
  }
  static V4 select_gt(V4 x, V4 y, V4 a, V4 b) {
    const uint64x2_t mlo = vcgtq_f64(x.lo, y.lo);
    const uint64x2_t mhi = vcgtq_f64(x.hi, y.hi);
    return {vbslq_f64(mlo, a.lo, b.lo), vbslq_f64(mhi, a.hi, b.hi)};
  }
  static double hsum(V4 a) {
    const double s01 = vgetq_lane_f64(a.lo, 0) + vgetq_lane_f64(a.lo, 1);
    const double s23 = vgetq_lane_f64(a.hi, 0) + vgetq_lane_f64(a.hi, 1);
    return s01 + s23;
  }
};
using ActiveOps = NeonOps;

#else
using ActiveOps = ScalarOps;
#endif

inline constexpr const char* kBackendName = ActiveOps::kName;

// The configure-time knob value, recorded next to kBackendName in bench
// context blocks ("off" forces ActiveOps = ScalarOps even on AVX2 hosts).
#if defined(UWP_SIMD_OFF)
inline constexpr const char* kSimdSetting = "off";
#else
inline constexpr const char* kSimdSetting = "on";
#endif

}  // namespace uwp::simd
