// SoA kernels for the solver hot path, templated on a simd.hpp backend.
//
// Each kernel is written ONCE against the 4-lane virtual-vector interface;
// instantiating it with ScalarOps or the native ActiveOps yields bit-
// identical results because every lane operation is one IEEE double
// operation and every reduction uses the same fixed 4-lane blocking:
// lane l accumulates elements l, l+4, l+8, ... and the final horizontal
// sum is always (lane0 + lane1) + (lane2 + lane3).
//
// All buffers a kernel loads full-width from must be padded to a multiple
// of simd::kLanes (simd::padded) with values that make the pad lanes exact
// no-ops — zeros for sums/products, index 0 for gather indices. Callers own
// the padding; the SMACOF/pinv/trilateration call sites stage their data
// into padded workspace arrays once per solve.
//
// Production call sites instantiate with simd::ActiveOps; the scalar
// instantiation stays compiled so bench_micro_kernels can report per-kernel
// scalar-vs-SIMD speedups from one binary and tests can assert the
// bit-identity contract directly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"

namespace uwp::kernels {

// Fixed-order blocked sum of `n_padded` doubles (n_padded % 4 == 0, pad
// slots zero).
template <class Ops>
double block_sum(const double* p, std::size_t n_padded) {
  typename Ops::V4 acc = Ops::zero();
  for (std::size_t c = 0; c < n_padded; c += simd::kLanes)
    acc = Ops::add(acc, Ops::load(p + c));
  return Ops::hsum(acc);
}

// Sum of `n` doubles for unpadded rows: blocked 4-lane main loop, hsum, then
// the tail elements added in ascending order — one fixed order on every
// backend.
template <class Ops>
double row_sum(const double* p, std::size_t n) {
  typename Ops::V4 acc = Ops::zero();
  std::size_t c = 0;
  for (; c + simd::kLanes <= n; c += simd::kLanes) acc = Ops::add(acc, Ops::load(p + c));
  double s = Ops::hsum(acc);
  for (; c < n; ++c) s += p[c];
  return s;
}

// Fused 2-column mat-vec: o{x,y}[r] = sum_k m[r, k] * {x,y}[k] for the first
// `nrows` rows of the row-major `m` with `stride` columns (stride padded,
// pad columns zero; x/y padded with zeros). Rows >= nrows are not written —
// the caller keeps output tails zeroed.
template <class Ops>
void matvec2(const double* m, std::size_t stride, std::size_t nrows, const double* x,
             const double* y, double* ox, double* oy) {
  for (std::size_t r = 0; r < nrows; ++r) {
    const double* row = m + r * stride;
    typename Ops::V4 ax = Ops::zero();
    typename Ops::V4 ay = Ops::zero();
    for (std::size_t c = 0; c < stride; c += simd::kLanes) {
      const typename Ops::V4 f = Ops::load(row + c);
      ax = Ops::add(ax, Ops::mul(f, Ops::load(x + c)));
      ay = Ops::add(ay, Ops::mul(f, Ops::load(y + c)));
    }
    ox[r] = Ops::hsum(ax);
    oy[r] = Ops::hsum(ay);
  }
}

// Per-link Euclidean distances and weighted stress in one pass over the SoA
// link arrays (li/lj gather indices, w weights, d measured distances, all
// padded: pad links have li = lj = 0 and w = d = 0, contributing exactly
// +0.0). Writes ||x_i - x_j|| into dij and returns
// sum_links w * (d - dij)^2 in fixed blocked order.
template <class Ops>
double link_stress(const double* x, const double* y, const std::uint32_t* li,
                   const std::uint32_t* lj, const double* w, const double* d,
                   double* dij, std::size_t m_padded) {
  typename Ops::V4 acc = Ops::zero();
  double gdx[simd::kLanes], gdy[simd::kLanes];
  for (std::size_t base = 0; base < m_padded; base += simd::kLanes) {
    // Scalar gather + difference (one IEEE subtract per lane, identical on
    // every backend); everything after runs on the vector unit.
    for (std::size_t l = 0; l < simd::kLanes; ++l) {
      const std::uint32_t i = li[base + l];
      const std::uint32_t j = lj[base + l];
      gdx[l] = x[i] - x[j];
      gdy[l] = y[i] - y[j];
    }
    const typename Ops::V4 dx = Ops::load(gdx);
    const typename Ops::V4 dy = Ops::load(gdy);
    const typename Ops::V4 dist =
        Ops::sqrt(Ops::add(Ops::mul(dx, dx), Ops::mul(dy, dy)));
    Ops::store(dij + base, dist);
    const typename Ops::V4 resid = Ops::sub(Ops::load(d + base), dist);
    acc = Ops::add(acc, Ops::mul(Ops::load(w + base), Ops::mul(resid, resid)));
  }
  return Ops::hsum(acc);
}

// Guttman B-matrix off-diagonal values per link:
// bval = dij > 1e-12 ? (0 - w * d) / dij : 0 (the caller scatters them into
// the padded B matrix). Pad links produce 0.
template <class Ops>
void guttman_b_values(const double* w, const double* d, const double* dij,
                      double* bvals, std::size_t m_padded) {
  const typename Ops::V4 eps = Ops::set1(1e-12);
  const typename Ops::V4 zero = Ops::zero();
  for (std::size_t base = 0; base < m_padded; base += simd::kLanes) {
    const typename Ops::V4 dd = Ops::load(dij + base);
    const typename Ops::V4 num =
        Ops::sub(zero, Ops::mul(Ops::load(w + base), Ops::load(d + base)));
    Ops::store(bvals + base, Ops::select_gt(dd, eps, Ops::div(num, dd), zero));
  }
}

// Rank-1 update row step of the symmetric pseudo-inverse:
// out[c] += a * col[c]. Elementwise (no reduction), so the scalar tail needs
// no padding discipline — each element is the same two IEEE operations on
// every backend.
template <class Ops>
void axpy(double* out, double a, const double* col, std::size_t n) {
  const typename Ops::V4 av = Ops::set1(a);
  std::size_t c = 0;
  for (; c + simd::kLanes <= n; c += simd::kLanes)
    Ops::store(out + c, Ops::add(Ops::load(out + c), Ops::mul(av, Ops::load(col + c))));
  for (; c < n; ++c) out[c] += a * col[c];
}

// Jacobi rotation applied to two contiguous rows: a'[k] = c*a[k] - s*b[k],
// b'[k] = s*a[k] + c*b[k] (elementwise, scalar tail).
template <class Ops>
void rotate_rows(double* a, double* b, double c, double s, std::size_t n) {
  const typename Ops::V4 cv = Ops::set1(c);
  const typename Ops::V4 sv = Ops::set1(s);
  std::size_t k = 0;
  for (; k + simd::kLanes <= n; k += simd::kLanes) {
    const typename Ops::V4 av = Ops::load(a + k);
    const typename Ops::V4 bv = Ops::load(b + k);
    Ops::store(a + k, Ops::sub(Ops::mul(cv, av), Ops::mul(sv, bv)));
    Ops::store(b + k, Ops::add(Ops::mul(sv, av), Ops::mul(cv, bv)));
  }
  for (; k < n; ++k) {
    const double av = a[k];
    const double bv = b[k];
    a[k] = c * av - s * bv;
    b[k] = s * av + c * bv;
  }
}

// Double-centering row fill of classical MDS: b[j] = -0.5 * (d2[j] - rm_i -
// rm[j] + total) for j < n (elementwise, scalar tail).
template <class Ops>
void center_row(double* b, const double* d2, double rm_i, const double* rm,
                double total, std::size_t n) {
  const typename Ops::V4 rmi = Ops::set1(rm_i);
  const typename Ops::V4 tot = Ops::set1(total);
  const typename Ops::V4 half = Ops::set1(-0.5);
  std::size_t j = 0;
  for (; j + simd::kLanes <= n; j += simd::kLanes) {
    const typename Ops::V4 v =
        Ops::add(Ops::sub(Ops::sub(Ops::load(d2 + j), rmi), Ops::load(rm + j)), tot);
    Ops::store(b + j, Ops::mul(half, v));
  }
  for (; j < n; ++j) b[j] = -0.5 * (d2[j] - rm_i - rm[j] + total);
}

// Gauss-Newton normal-equation accumulation for 2D trilateration. Anchors
// come as padded SoA arrays with a 1.0/0.0 validity mask (pad anchors
// masked to zero contribution). Residuals r_i = ||p - a_i|| - range_i with
// the distance clamped to >= 1e-9 exactly like the scalar reference
// (`max(dist, 1e-9)` in std::max argument order).
struct TrilatAccum {
  double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
  double jtr0 = 0.0, jtr1 = 0.0;
  double sse = 0.0;
};

template <class Ops>
TrilatAccum trilat_accumulate(const double* ax, const double* ay, const double* ranges,
                              const double* mask, std::size_t n_padded, double px,
                              double py) {
  using V4 = typename Ops::V4;
  const V4 pxv = Ops::set1(px);
  const V4 pyv = Ops::set1(py);
  const V4 one = Ops::set1(1.0);
  const V4 clamp = Ops::set1(1e-9);
  V4 a00 = Ops::zero(), a01 = Ops::zero(), a11 = Ops::zero();
  V4 r0 = Ops::zero(), r1 = Ops::zero(), se = Ops::zero();
  for (std::size_t base = 0; base < n_padded; base += simd::kLanes) {
    const V4 dx = Ops::sub(pxv, Ops::load(ax + base));
    const V4 dy = Ops::sub(pyv, Ops::load(ay + base));
    const V4 dist = Ops::max(
        Ops::sqrt(Ops::add(Ops::mul(dx, dx), Ops::mul(dy, dy))), clamp);
    const V4 r = Ops::sub(dist, Ops::load(ranges + base));
    const V4 inv = Ops::div(one, dist);
    const V4 ux = Ops::mul(dx, inv);
    const V4 uy = Ops::mul(dy, inv);
    const V4 m = Ops::load(mask + base);
    a00 = Ops::add(a00, Ops::mul(m, Ops::mul(ux, ux)));
    a01 = Ops::add(a01, Ops::mul(m, Ops::mul(ux, uy)));
    a11 = Ops::add(a11, Ops::mul(m, Ops::mul(uy, uy)));
    r0 = Ops::add(r0, Ops::mul(m, Ops::mul(ux, r)));
    r1 = Ops::add(r1, Ops::mul(m, Ops::mul(uy, r)));
    se = Ops::add(se, Ops::mul(m, Ops::mul(r, r)));
  }
  TrilatAccum out;
  out.jtj00 = Ops::hsum(a00);
  out.jtj01 = Ops::hsum(a01);
  out.jtj11 = Ops::hsum(a11);
  out.jtr0 = Ops::hsum(r0);
  out.jtr1 = Ops::hsum(r1);
  out.sse = Ops::hsum(se);
  return out;
}

}  // namespace uwp::kernels
