#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uwp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("percentile: out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double ecdf(std::span<const double> xs, double x) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : xs)
    if (v <= x) ++count;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  s.p90 = percentile(xs, 90.0);
  s.p95 = percentile(xs, 95.0);
  return s;
}

std::vector<std::pair<double, double>> cdf_points(std::span<const double> xs,
                                                  std::size_t points) {
  std::vector<std::pair<double, double>> out;
  if (xs.empty() || points < 2) return out;
  const double lo = *std::min_element(xs.begin(), xs.end());
  const double hi = *std::max_element(xs.begin(), xs.end());
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    out.emplace_back(x, ecdf(xs, x));
  }
  return out;
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace uwp
