// Descriptive statistics used when reporting experiment results (medians,
// percentiles, CDFs) and for noise calibration.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace uwp {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // unbiased (n-1); 0 for n < 2
double stddev(std::span<const double> xs);

// Percentile in [0, 100] with linear interpolation between order statistics
// (the "linear" definition used by numpy). Throws on empty input.
double percentile(std::span<const double> xs, double pct);
double median(std::span<const double> xs);

// Empirical CDF evaluated at `x`: fraction of samples <= x.
double ecdf(std::span<const double> xs, double x);

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

// Renders evenly spaced CDF points "x=... p=..." for plotting figures in
// text form; `points` samples between min and max.
std::vector<std::pair<double, double>> cdf_points(std::span<const double> xs,
                                                  std::size_t points = 21);

// Root-mean-square of a sequence.
double rms(std::span<const double> xs);

}  // namespace uwp
