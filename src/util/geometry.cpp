#include "util/geometry.hpp"

#include <stdexcept>

namespace uwp {

Vec2 rotate(Vec2 v, double angle_rad) {
  const double c = std::cos(angle_rad);
  const double s = std::sin(angle_rad);
  return {c * v.x - s * v.y, s * v.x + c * v.y};
}

Vec2 reflect_across_line(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 dir = b - a;
  const double len2 = dir.dot(dir);
  if (len2 == 0.0) return p;
  const Vec2 ap = p - a;
  const double t = ap.dot(dir) / len2;
  const Vec2 foot = a + dir * t;
  return foot + (foot - p);
}

double bearing(Vec2 v) { return std::atan2(v.y, v.x); }

double wrap_angle(double rad) {
  while (rad > kPi) rad -= 2.0 * kPi;
  while (rad <= -kPi) rad += 2.0 * kPi;
  return rad;
}

double side_of_line(Vec2 p, Vec2 a, Vec2 b) { return (b - a).cross(p - a); }

Vec2 centroid(const std::vector<Vec2>& pts) {
  Vec2 c;
  if (pts.empty()) return c;
  for (const Vec2& p : pts) c = c + p;
  return c * (1.0 / static_cast<double>(pts.size()));
}

std::vector<Vec2> procrustes_align(const std::vector<Vec2>& src,
                                   const std::vector<Vec2>& dst,
                                   bool allow_reflection) {
  if (src.size() != dst.size() || src.empty())
    throw std::invalid_argument("procrustes_align: size mismatch");
  const Vec2 cs = centroid(src);
  const Vec2 cd = centroid(dst);

  // Cross-covariance of the centered clouds.
  double sxx = 0.0, sxy = 0.0, syx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Vec2 a = src[i] - cs;
    const Vec2 b = dst[i] - cd;
    sxx += a.x * b.x;
    sxy += a.x * b.y;
    syx += a.y * b.x;
    syy += a.y * b.y;
  }

  // Best pure rotation: angle = atan2(sxy - syx, sxx + syy).
  auto apply = [&](bool reflect) {
    double a_xx = sxx, a_xy = sxy, a_yx = syx, a_yy = syy;
    if (reflect) {
      // Reflect source across the x axis first: (x, y) -> (x, -y).
      a_yx = -a_yx;
      a_yy = -a_yy;
    }
    const double angle = std::atan2(a_xy - a_yx, a_xx + a_yy);
    std::vector<Vec2> out(src.size());
    double err = 0.0;
    for (std::size_t i = 0; i < src.size(); ++i) {
      Vec2 p = src[i] - cs;
      if (reflect) p.y = -p.y;
      p = rotate(p, angle) + cd;
      out[i] = p;
      err += (p - dst[i]).dot(p - dst[i]);
    }
    return std::make_pair(out, err);
  };

  auto [no_ref, err0] = apply(false);
  if (!allow_reflection) return no_ref;
  auto [ref, err1] = apply(true);
  return err1 < err0 ? ref : no_ref;
}

double aligned_rmse(const std::vector<Vec2>& estimate, const std::vector<Vec2>& truth) {
  const std::vector<Vec2> aligned = procrustes_align(estimate, truth);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const Vec2 d = aligned[i] - truth[i];
    acc += d.dot(d);
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

}  // namespace uwp
