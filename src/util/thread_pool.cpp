#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace uwp {

std::size_t ThreadPool::resolve_thread_count(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_thread_count(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_lanes(n, [&body](std::size_t, std::size_t i) { body(i); });
}

void ThreadPool::parallel_for_lanes(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t lanes = std::min(size(), n);
  if (lanes <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;  // first exception thrown by any index
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining.store(lanes);

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([shared, n, lane, &body] {
      for (;;) {
        const std::size_t i = shared->next.fetch_add(1);
        if (i >= n) break;
        try {
          body(lane, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->mu);
          if (!shared->error) shared->error = std::current_exception();
        }
      }
      if (shared->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->done.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->done.wait(lock, [&] { return shared->remaining.load() == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace uwp
