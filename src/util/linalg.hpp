// Linear-algebra routines for the localization core: symmetric
// eigendecomposition (cyclic Jacobi), Moore-Penrose pseudoinverse of symmetric
// matrices (needed for the SMACOF Guttman transform with missing links), and
// small-system solves.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace uwp {

struct EigenResult {
  // Eigenvalues in descending order.
  std::vector<double> values;
  // Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
// Accurate and simple; fine for the N <= O(100) matrices we deal with.
// Throws std::invalid_argument if `a` is not square.
EigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

// Moore-Penrose pseudoinverse of a symmetric matrix, computed from the
// eigendecomposition. Eigenvalues with |lambda| <= rank_tol * max|lambda|
// are treated as zero.
Matrix pseudo_inverse_symmetric(const Matrix& a, double rank_tol = 1e-10);

// Solve a * x = b for square `a` by Gaussian elimination with partial
// pivoting. Throws std::domain_error when `a` is singular to working
// precision.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

// Determinant via LU factorization (partial pivoting).
double determinant(const Matrix& a);

// 2x2 / 3x3 closed-form inverse helper used by the geometry code; throws on
// singular input.
Matrix inverse(const Matrix& a);

}  // namespace uwp
