// Linear-algebra routines for the localization core: symmetric
// eigendecomposition (cyclic Jacobi), Moore-Penrose pseudoinverse of symmetric
// matrices (needed for the SMACOF Guttman transform with missing links), and
// small-system solves.
#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace uwp {

struct EigenResult {
  // Eigenvalues in descending order.
  std::vector<double> values;
  // Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
// Accurate and simple; fine for the N <= O(100) matrices we deal with.
// Throws std::invalid_argument if `a` is not square.
EigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

// Moore-Penrose pseudoinverse of a symmetric matrix, computed from the
// eigendecomposition. Eigenvalues with |lambda| <= rank_tol * max|lambda|
// are treated as zero.
Matrix pseudo_inverse_symmetric(const Matrix& a, double rank_tol = 1e-10);

// Reusable scratch for the workspace variants below. One workspace serves
// any matrix size; buffers grow to the largest problem seen and stay put.
struct EigenWorkspace {
  Matrix d, v;                     // Jacobi iterates
  std::vector<std::size_t> order;  // eigenvalue sort permutation
  std::vector<double> diag;
  EigenResult eig;  // scratch decomposition for the pseudoinverse
};

// Workspace variants: bit-identical to the allocating forms above, but all
// scratch lives in `ws` (and the caller's `out`), so steady-state callers
// perform no heap allocation.
void eigen_symmetric_into(const Matrix& a, EigenResult& out, EigenWorkspace& ws,
                          double tol = 1e-12, int max_sweeps = 64);
void pseudo_inverse_symmetric_into(const Matrix& a, Matrix& out, EigenWorkspace& ws,
                                   double rank_tol = 1e-10);

// Solve a * x = b for square `a` by Gaussian elimination with partial
// pivoting. Throws std::domain_error when `a` is singular to working
// precision.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

// Workspace variant: identical results; `lu` and `perm` are scratch, `x`
// receives the solution (all reused without allocation in steady state).
void solve_into(const Matrix& a, std::span<const double> b, std::vector<double>& x,
                Matrix& lu, std::vector<std::size_t>& perm);

// Determinant via LU factorization (partial pivoting).
double determinant(const Matrix& a);

// 2x2 / 3x3 closed-form inverse helper used by the geometry code; throws on
// singular input.
Matrix inverse(const Matrix& a);

}  // namespace uwp
