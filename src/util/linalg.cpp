#include "util/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/simd_kernels.hpp"

namespace uwp {

namespace {

// Off-diagonal Frobenius norm, used as the Jacobi convergence measure.
double off_diagonal_norm(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (r != c) acc += a(r, c) * a(r, c);
  return std::sqrt(acc);
}

}  // namespace

EigenResult eigen_symmetric(const Matrix& a, double tol, int max_sweeps) {
  EigenWorkspace ws;
  EigenResult out;
  eigen_symmetric_into(a, out, ws, tol, max_sweeps);
  return out;
}

void eigen_symmetric_into(const Matrix& a, EigenResult& out, EigenWorkspace& ws,
                          double tol, int max_sweeps) {
  if (a.rows() != a.cols()) throw std::invalid_argument("eigen_symmetric: not square");
  const std::size_t n = a.rows();
  Matrix& d = ws.d;
  Matrix& v = ws.v;
  d = a;
  v.assign(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double scale = std::max(1.0, d.norm());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(d) <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= tol * scale * 1e-4) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation G(p,q,theta) on both sides: D = G^T D G. The
        // D-column and V-column updates touch disjoint matrices, so one
        // fused pass (same per-element operations) halves the loop trips.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
        // Rows p and q are contiguous: the row half of the rotation runs on
        // the vector unit (same per-element operations as the scalar form).
        kernels::rotate_rows<simd::ActiveOps>(d.row(p).data(), d.row(q).data(), c, s,
                                              n);
      }
    }
  }

  out.values.resize(n);
  std::vector<std::size_t>& order = ws.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double>& diag = ws.diag;
  diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return diag[i] > diag[j]; });

  out.vectors.assign(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = diag[order[i]];
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, i) = v(r, order[i]);
  }
}

Matrix pseudo_inverse_symmetric(const Matrix& a, double rank_tol) {
  EigenWorkspace ws;
  Matrix out;
  pseudo_inverse_symmetric_into(a, out, ws, rank_tol);
  return out;
}

void pseudo_inverse_symmetric_into(const Matrix& a, Matrix& out, EigenWorkspace& ws,
                                   double rank_tol) {
  eigen_symmetric_into(a, ws.eig, ws);
  const EigenResult& eig = ws.eig;
  const std::size_t n = a.rows();
  double max_abs = 0.0;
  for (double l : eig.values) max_abs = std::max(max_abs, std::abs(l));
  const double cutoff = rank_tol * std::max(max_abs, 1e-300);

  // A^+ = V diag(1/lambda_i or 0) V^T. Eigenvector column k is staged into
  // a contiguous buffer so the rank-1 update streams instead of striding.
  out.assign(n, n);
  std::vector<double>& col = ws.diag;  // free scratch between decompositions
  col.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double l = eig.values[k];
    if (std::abs(l) <= cutoff) continue;
    const double inv = 1.0 / l;
    for (std::size_t c = 0; c < n; ++c) col[c] = eig.vectors(c, k);
    for (std::size_t r = 0; r < n; ++r)
      kernels::axpy<simd::ActiveOps>(out.row(r).data(), inv * col[r], col.data(), n);
  }
}

namespace {

// LU decomposition with partial pivoting. Returns false if singular.
bool lu_decompose(Matrix& a, std::vector<std::size_t>& perm, int& sign) {
  const std::size_t n = a.rows();
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  sign = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(perm[col], perm[pivot]);
      sign = -sign;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      a(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
    }
  }
  return true;
}

}  // namespace

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  Matrix lu;
  std::vector<std::size_t> perm;
  std::vector<double> x;
  solve_into(a, b, x, lu, perm);
  return x;
}

void solve_into(const Matrix& a, std::span<const double> b, std::vector<double>& x,
                Matrix& lu, std::vector<std::size_t>& perm) {
  if (a.rows() != a.cols() || a.rows() != b.size())
    throw std::invalid_argument("solve: shape mismatch");
  const std::size_t n = a.rows();
  lu = a;
  int sign = 1;
  if (!lu_decompose(lu, perm, sign)) throw std::domain_error("solve: singular matrix");

  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu(i, j) * x[j];
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) x[i] -= lu(i, j) * x[j];
    x[i] /= lu(i, i);
  }
}

double determinant(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("determinant: not square");
  Matrix lu = a;
  std::vector<std::size_t> perm;
  int sign = 1;
  if (!lu_decompose(lu, perm, sign)) return 0.0;
  double det = sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= lu(i, i);
  return det;
}

Matrix inverse(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("inverse: not square");
  const std::size_t n = a.rows();
  Matrix out(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    std::fill(e.begin(), e.end(), 0.0);
    e[c] = 1.0;
    const std::vector<double> col = solve(a, e);
    for (std::size_t r = 0; r < n; ++r) out(r, c) = col[r];
  }
  return out;
}

}  // namespace uwp
