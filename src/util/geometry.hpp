// Small 2D/3D vector types and geometric helpers used across the localization
// core and the acoustic simulator.
#pragma once

#include <cmath>
#include <vector>

namespace uwp {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double dot(Vec2 o) const { return x * o.x + y * o.y; }
  // z-component of the 3D cross product; sign tells left/right of a bearing.
  double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  bool operator==(const Vec2&) const = default;
};

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(x * x + y * y + z * z); }
  Vec2 xy() const { return {x, y}; }
  bool operator==(const Vec3&) const = default;
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double distance(Vec3 a, Vec3 b) { return (a - b).norm(); }

// Rotate `v` by `angle_rad` counterclockwise about the origin.
Vec2 rotate(Vec2 v, double angle_rad);

// Reflect point `p` across the line through `a` and `b`. Used to enumerate
// the two flip candidates in §2.1.4. Degenerate (a == b) returns p.
Vec2 reflect_across_line(Vec2 p, Vec2 a, Vec2 b);

// Angle of vector `v` in radians, in (-pi, pi].
double bearing(Vec2 v);

// Wrap an angle to (-pi, pi].
double wrap_angle(double rad);

// Signed side of point `p` relative to the directed line a->b: positive if p
// is to the left. This is the sign term in the paper's flip-voting function.
double side_of_line(Vec2 p, Vec2 a, Vec2 b);

constexpr double kPi = 3.14159265358979323846;
inline double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

// Centroid of a point cloud.
Vec2 centroid(const std::vector<Vec2>& pts);

// Rigid alignment (rotation + translation + optional reflection) of `src`
// onto `dst` minimizing sum of squared distances (orthogonal Procrustes).
// Returns transformed copy of src. Requires equal non-zero sizes.
std::vector<Vec2> procrustes_align(const std::vector<Vec2>& src,
                                   const std::vector<Vec2>& dst,
                                   bool allow_reflection = true);

// Mean pairwise alignment error after optimal rigid alignment — the metric
// the paper's Fig 6 analytical evaluation reports.
double aligned_rmse(const std::vector<Vec2>& estimate, const std::vector<Vec2>& truth);

}  // namespace uwp
