// Dense row-major matrix of doubles, sized for small localization problems
// (N <= a few hundred). Deliberately minimal: only the operations the
// localization core and DSP substrate need.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace uwp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix ones(std::size_t rows, std::size_t cols);

  // Reshape to rows x cols reusing the existing storage (no allocation once
  // capacity suffices) and set every element to `fill`. The workspace
  // counterpart of constructing Matrix(rows, cols, fill).
  void assign(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  Matrix operator*(double s) const;

  bool operator==(const Matrix& rhs) const = default;

  // Frobenius norm.
  double norm() const;
  // Maximum absolute element difference; matrices must be the same shape.
  double max_abs_diff(const Matrix& rhs) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(double s, const Matrix& m);

// out = a * b without allocating when `out` already has the product's shape
// (it is reshaped via assign() otherwise). Accumulates in the same order as
// operator*, so results are bit-identical to the allocating form. `out` must
// not alias `a` or `b`.
void multiply_into(Matrix& out, const Matrix& a, const Matrix& b);

}  // namespace uwp
