#include "util/random.hpp"

namespace uwp {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double sigma) {
  std::normal_distribution<double> dist(mean, sigma);
  return dist(engine_);
}

double Rng::symmetric(double bound) { return uniform(-bound, bound); }

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

std::vector<double> Rng::normal_vector(std::size_t n, double mean, double sigma) {
  std::vector<double> out(n);
  std::normal_distribution<double> dist(mean, sigma);
  for (double& v : out) v = dist(engine_);
  return out;
}

Rng Rng::fork() {
  // Mix two draws so sibling forks diverge even when called back to back.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ull);
}

}  // namespace uwp
