// Deterministic random source shared by the simulation substrates. A thin
// wrapper over std::mt19937_64 so every experiment is reproducible from a
// single seed and so simulation code doesn't each carry its own distribution
// boilerplate.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace uwp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x75770517u) : engine_(seed) {}

  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  double normal(double mean = 0.0, double sigma = 1.0);
  // Symmetric uniform error in [-bound, +bound]; the paper's analytical
  // evaluation (Fig 6) perturbs measurements this way.
  double symmetric(double bound);
  bool bernoulli(double p);
  // Exponentially distributed inter-arrival time with the given rate (events
  // per unit); used by the Poisson bubble-noise process.
  double exponential(double rate);

  std::vector<double> normal_vector(std::size_t n, double mean = 0.0, double sigma = 1.0);

  // Derive an independent child generator; lets parallel scenario trials use
  // uncorrelated streams while staying reproducible.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uwp
