#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uwp {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("ragged matrix initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0);
}

void Matrix::assign(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix sum shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix difference shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  return m;
}

Matrix operator*(double s, const Matrix& m) { return m * s; }

void multiply_into(Matrix& out, const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matrix product shape mismatch");
  out.assign(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const std::span<const double> arow = a.row(r);
    const std::span<double> orow = out.row(r);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double f = arow[k];
      if (f == 0.0) continue;
      const std::span<const double> brow = b.row(k);
      for (std::size_t c = 0; c < b.cols(); ++c) orow[c] += f * brow[c];
    }
  }
}

}  // namespace uwp
