#include "pipeline/batch_plane.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/collector.hpp"

namespace uwp::pipeline {

namespace {

// Shape key of a round: pipelines with equal keys run identical stage code
// paths on identically-sized buffers, so their rounds share one SoA group.
std::size_t shape_key(const RoundPipeline& pipe) {
  const PipelineOptions& o = pipe.options();
  return (static_cast<std::size_t>(o.protocol.num_devices) << 2) |
         (o.quantize_payload ? 1u : 0u) | (o.track ? 2u : 0u);
}

class SlotClock {
 public:
  explicit SlotClock(bool enabled) : enabled_(enabled) {}
  void start() {
    if (enabled_) t0_ = std::chrono::steady_clock::now();
  }
  void stop(BatchSlot& slot) const {
    if (enabled_)
      slot.latency_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
              .count();
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

void BatchPlane::clear() { slots_.clear(); }

void BatchPlane::enqueue(RoundPipeline& pipe, RoundMeasurement& m, uwp::Rng& rng,
                         double dt_s) {
  slots_.push_back(BatchSlot{&pipe, &m, &rng, dt_s, nullptr, 0.0});
}

void BatchPlane::execute(bool measure_latency) {
  const std::size_t count = slots_.size();
  order_.resize(count);
  for (std::size_t i = 0; i < count; ++i) order_[i] = i;
  // Stable by enqueue index within a shape group: grouping is a memory
  // layout choice only, results are order-independent.
  std::stable_sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return shape_key(*slots_[a].pipe) < shape_key(*slots_[b].pipe);
  });

  SlotClock clock(measure_latency);
  std::size_t group_begin = 0;
  while (group_begin < count) {
    const std::size_t key = shape_key(*slots_[order_[group_begin]].pipe);
    std::size_t group_end = group_begin + 1;
    while (group_end < count && shape_key(*slots_[order_[group_end]].pipe) == key)
      ++group_end;
    const std::size_t group = group_end - group_begin;
    const std::size_t n = slots_[order_[group_begin]].pipe->options().protocol.num_devices;
    const std::size_t cells = n * n;

    // Stage 1: quantize + ranging for the whole group, gathering each
    // round's distance/weight matrices into contiguous plane rows.
    dist_plane_.resize(group * cells);
    weight_plane_.resize(group * cells);
    for (std::size_t g = 0; g < group; ++g) {
      BatchSlot& slot = slots_[order_[group_begin + g]];
      clock.start();
      slot.pipe->begin_round(slot.dt_s);
      slot.pipe->stage_quantize(*slot.meas);
      slot.pipe->stage_ranging(*slot.meas);
      // Group assignment + SoA gather, recorded as the round's kBatch trace
      // span: the only batch-plane work that isn't a pipeline stage.
      telemetry::ShardStream* const tel = slot.pipe->telemetry();
      const std::uint64_t tid = slot.pipe->trace_id();
      const bool tracing = tid != 0 && tel != nullptr && tel->trace_enabled();
      const double tts = tracing ? tel->trace_now() : 0.0;
      const RoundOutput& out = slot.pipe->output();
      std::copy(out.ranging.distances.data().begin(), out.ranging.distances.data().end(),
                dist_plane_.begin() + static_cast<std::ptrdiff_t>(g * cells));
      std::copy(out.ranging.weights.data().begin(), out.ranging.weights.data().end(),
                weight_plane_.begin() + static_cast<std::ptrdiff_t>(g * cells));
      if (tracing)
        tel->trace_span(tid, telemetry::TraceOp::kBatch,
                        telemetry::TraceOp::kRound, tts);
      clock.stop(slot);
    }

    // Stage 2: localize the whole group from the dense planes.
    for (std::size_t g = 0; g < group; ++g) {
      BatchSlot& slot = slots_[order_[group_begin + g]];
      clock.start();
      slot.pipe->stage_localize(
          *slot.meas, *slot.rng,
          std::span<const double>(dist_plane_.data() + g * cells, cells),
          std::span<const double>(weight_plane_.data() + g * cells, cells));
      clock.stop(slot);
    }

    // Stage 3: track + finish for the whole group.
    for (std::size_t g = 0; g < group; ++g) {
      BatchSlot& slot = slots_[order_[group_begin + g]];
      clock.start();
      slot.pipe->stage_track(*slot.meas);
      slot.out = &slot.pipe->finish_round();
      clock.stop(slot);
    }

    group_begin = group_end;
  }
}

}  // namespace uwp::pipeline
