// The front-end contract of the round pipeline. A MeasurementModel is any
// source of per-round measurements — waveform-level PHY simulation, the
// calibrated fast-Gaussian model, the packet-level DES, replayed field data
// — producing one common RoundMeasurement that pipeline::RoundPipeline turns
// into positions and error metrics. Adding a new scenario front-end means
// implementing this interface and nothing else; the leader-side chain is
// never forked.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ambiguity.hpp"
#include "proto/timestamp_protocol.hpp"
#include "util/geometry.hpp"
#include "util/random.hpp"

namespace uwp::pipeline {

// Everything the leader-side chain consumes for one protocol round, plus the
// ground truth the metrics stage evaluates against. Buffers are reused
// across rounds by callers that keep one instance warm.
struct RoundMeasurement {
  proto::ProtocolRun protocol;  // timestamp table (pre-quantization)
  std::vector<double> depths;   // per-device measured depths (m)
  double pointing_bearing_rad = 0.0;
  std::vector<core::MicVote> votes;  // leader dual-mic flip votes
  // Ground truth at measurement time: absolute positions (ranging
  // diagnostics) and the leader-origin horizontal frame (error metrics).
  std::vector<Vec3> truth_pos;
  std::vector<Vec2> truth_xy;
  std::vector<double> truth_depths;
};

class MeasurementModel {
 public:
  virtual ~MeasurementModel() = default;

  virtual std::size_t size() const = 0;

  // Produce the next round's measurement into `out`, reusing its buffers.
  // Multi-round front-ends (DES, replay) advance their internal clock here.
  virtual void measure(RoundMeasurement& out, uwp::Rng& rng) = 0;
};

// Fast-mode dual-mic flip vote for a diver at `truth_xy` (leader-origin)
// while the leader points at `to_dev1`: vote reliability depends on how far
// the diver sits from the pointing line — the mic offset shrinks to
// sub-sample for nearly collinear divers. Average accuracy matches the
// paper's ~90%. Shared by the fast-Gaussian and DES front-ends.
int fast_vote_sign(Vec2 truth_xy, Vec2 to_dev1, uwp::Rng& rng);

}  // namespace uwp::pipeline
