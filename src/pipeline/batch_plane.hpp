// The shard-level batch plane: gathers many sessions' pending rounds into
// same-shaped groups and runs them stage by stage — every group member's
// quantize+ranging, then every member's localize, then every member's track
// — instead of one pipeline at a time to completion. The ranging stage's
// distance/weight matrices are staged into one contiguous struct-of-arrays
// buffer per group (one n*n row per round, rows adjacent in memory), so the
// localize stage streams through a dense plane instead of pointer-chasing
// hundreds of warm pipelines' heaps.
//
// Determinism: stages communicate only through each round's own pipeline
// state and each slot draws only its own rng, so a batched tick is
// bit-identical to running the same rounds' run_round calls back to back —
// at any shard count and in any grouping. Shape groups exist purely for
// memory locality.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pipeline/round_pipeline.hpp"

namespace uwp::pipeline {

// One enqueued round: which pipeline runs it, the measurement it consumes,
// the session's solver rng, and (after execute) its outputs.
struct BatchSlot {
  RoundPipeline* pipe = nullptr;
  RoundMeasurement* meas = nullptr;
  uwp::Rng* rng = nullptr;
  double dt_s = 0.0;
  const RoundOutput* out = nullptr;  // valid after execute()
  double latency_s = 0.0;            // filled when execute(measure_latency)
};

class BatchPlane {
 public:
  // Drop all slots (keeps buffer capacity for the next tick).
  void clear();
  std::size_t size() const { return slots_.size(); }

  // Add one round to the current batch. The pipeline, measurement, and rng
  // must stay valid until execute() returns; each pipeline may appear at
  // most once per batch (one round per session per tick).
  void enqueue(RoundPipeline& pipe, RoundMeasurement& m, uwp::Rng& rng, double dt_s);

  // Run every enqueued round through quantize -> ranging -> localize ->
  // track, stage-sliced within shape groups (same device count and
  // quantize/track options). With `measure_latency`, each slot's latency_s
  // becomes the summed wall clock of its own stage sections.
  void execute(bool measure_latency = false);

  // Slots in enqueue order, outputs filled. Valid until clear()/enqueue().
  std::span<const BatchSlot> slots() const { return slots_; }

 private:
  std::vector<BatchSlot> slots_;
  std::vector<std::size_t> order_;       // slot indices sorted by shape group
  std::vector<double> dist_plane_;       // SoA staging: group's distance rows
  std::vector<double> weight_plane_;     // SoA staging: group's weight rows
};

}  // namespace uwp::pipeline
