#include "pipeline/round_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "telemetry/collector.hpp"

namespace uwp::pipeline {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

proto::ProtocolConfig solver_config(const PipelineOptions& opts) {
  proto::ProtocolConfig cfg = opts.protocol;
  cfg.sound_speed_mps += opts.sound_speed_error_mps;
  return cfg;
}

proto::PayloadCodecConfig make_codec_config(const PipelineOptions& opts) {
  proto::PayloadCodecConfig cfg;
  cfg.protocol = opts.protocol;
  return cfg;
}
}  // namespace

RoundPipeline::RoundPipeline(PipelineOptions opts)
    : opts_(opts),
      solver_(solver_config(opts)),
      codec_(make_codec_config(opts)),
      localizer_(opts.localizer),
      tracker_(opts.protocol.num_devices, opts.tracker) {
  if (opts_.protocol.num_devices < 2)
    throw std::invalid_argument("RoundPipeline: need >= 2 devices");
}

void RoundPipeline::reset() {
  tracker_ = core::GroupTracker(opts_.protocol.num_devices, opts_.tracker);
  warm_valid_ = false;
}

void RoundPipeline::rebind(const PipelineOptions& opts) {
  if (opts.protocol.num_devices < 2)
    throw std::invalid_argument("RoundPipeline: need >= 2 devices");
  opts_ = opts;
  solver_ = proto::RangingSolver(solver_config(opts));
  codec_ = make_codec_config(opts);
  localizer_ = core::Localizer(opts.localizer);
  tracker_ = core::GroupTracker(opts.protocol.num_devices, opts.tracker);
  warm_valid_ = false;
}

void RoundPipeline::set_search_threads(std::size_t n) {
  if (n == 0 || n == opts_.localizer.outlier.search_threads) return;
  opts_.localizer.outlier.search_threads = n;
  localizer_ = core::Localizer(opts_.localizer);
}

bool RoundPipeline::tracing() const {
  return trace_id_ != 0 && telemetry_ != nullptr &&
         telemetry_->trace_enabled();
}

double RoundPipeline::trace_begin() const {
  return tracing() ? telemetry_->trace_now() : 0.0;
}

void RoundPipeline::trace_emit(telemetry::TraceOp op, double ts0_s) {
  if (tracing())
    telemetry_->trace_span(trace_id_, op, telemetry::TraceOp::kRound, ts0_s);
}

void RoundPipeline::coast(double dt_s) {
  tracker_.predict(dt_s);
  // A coast gap means the predicted geometry has drifted unverified; the
  // next round re-seeds from cold classical MDS.
  warm_valid_ = false;
}

const RoundOutput& RoundPipeline::run_round(RoundMeasurement& m, uwp::Rng& rng,
                                            double dt_s) {
  begin_round(dt_s);
  stage_quantize(m);
  stage_ranging(m);
  stage_localize(m, rng, out_.ranging.distances.data(), out_.ranging.weights.data());
  stage_track(m);
  return finish_round();
}

void RoundPipeline::begin_round(double dt_s) {
  round_elapsed_ = 0.0;
  trace_ts0_ = trace_begin();
  // Tracker prediction runs first (it used to sit with the update after
  // localization — same predict/update sequence either way) so the predicted
  // geometry can warm-start the localize stage.
  if (opts_.track) {
    telemetry::SpanTimer span(telemetry_, telemetry::Stage::kTrack);
    tracker_.predict(dt_s);
    round_elapsed_ += span.stop();
  }
}

void RoundPipeline::stage_quantize(RoundMeasurement& m) {
  // Payload quantization (§2.4): timestamps ride to the leader as 10-bit
  // slot-relative deltas at 2-sample resolution.
  const double tts = trace_begin();
  telemetry::SpanTimer span(telemetry_, telemetry::Stage::kQuantize);
  if (opts_.quantize_payload) proto::quantize_run_payload(m.protocol, codec_);
  round_elapsed_ += span.stop();
  trace_emit(telemetry::TraceOp::kQuantize, tts);
}

void RoundPipeline::stage_ranging(RoundMeasurement& m) {
  const std::size_t n = opts_.protocol.num_devices;
  const double tts = trace_begin();
  telemetry::SpanTimer span(telemetry_, telemetry::Stage::kRanging);
  // Pairwise distances from the timestamp table.
  solver_.solve_into(out_.ranging, m.protocol);

  // Per-link 1D ranging diagnostics against the true geometry.
  out_.ranging_errors.clear();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (out_.ranging.weights(i, j) > 0.0) {
        const double true_d = distance(m.truth_pos[i], m.truth_pos[j]);
        out_.ranging_errors.push_back(std::abs(out_.ranging.distances(i, j) - true_d));
      }
  round_elapsed_ += span.stop();
  trace_emit(telemetry::TraceOp::kRanging, tts);
}

void RoundPipeline::stage_localize(RoundMeasurement& m, uwp::Rng& rng,
                                   std::span<const double> distances,
                                   std::span<const double> weights) {
  const std::size_t n = opts_.protocol.num_devices;
  out_.localizer_input.distances.assign(n, n);
  out_.localizer_input.weights.assign(n, n);
  std::copy(distances.begin(), distances.end(),
            out_.localizer_input.distances.data().begin());
  std::copy(weights.begin(), weights.end(),
            out_.localizer_input.weights.data().begin());
  out_.localizer_input.depths = m.depths;
  out_.localizer_input.pointing_bearing_rad = m.pointing_bearing_rad;
  out_.localizer_input.votes = m.votes;

  out_.error_2d.assign(n, kNaN);
  out_.tracked_error_2d.assign(n, kNaN);
  out_.error_2d[0] = 0.0;

  // Cross-round warm start: when the previous round localized and updated
  // the tracker, seed SMACOF from the predicted geometry (leader pinned at
  // the origin) instead of cold classical MDS. SMACOF only sees pairwise
  // distances, so the output-frame prediction is a valid seed; ambiguity
  // resolution re-normalizes the frame afterwards as usual.
  bool warm = opts_.track && warm_valid_;
  if (warm) {
    warm_init_.resize(n);
    warm_init_[0] = {0.0, 0.0};
    for (std::size_t i = 1; i < n; ++i) {
      const core::DiverTrack& track = tracker_.track(i);
      if (!track.initialized()) {
        warm = false;
        break;
      }
      warm_init_[i] = track.position();
    }
  }

  const double tts = trace_begin();
  telemetry::SpanTimer span(telemetry_, telemetry::Stage::kLocalize);
  try {
    localizer_.localize_into(out_.localization, out_.localizer_input, rng, loc_ws_,
                             warm ? &warm_init_ : nullptr);
    out_.localized = true;
  } catch (const std::exception&) {
    out_.localized = false;
  }
  round_elapsed_ += span.stop();
  trace_emit(telemetry::TraceOp::kLocalize, tts);
  if (telemetry_ != nullptr)
    telemetry_->count(warm ? telemetry::Counter::kWarmStartHits
                           : telemetry::Counter::kWarmStartMisses);

  if (out_.localized) {
    for (std::size_t i = 1; i < n; ++i)
      out_.error_2d[i] = distance(out_.localization.positions[i].xy(), m.truth_xy[i]);
  }
}

void RoundPipeline::stage_track(RoundMeasurement& m) {
  if (!opts_.track) return;
  const std::size_t n = opts_.protocol.num_devices;
  // Tracking: coast through failed rounds, fuse successful ones (the predict
  // half already ran in begin_round).
  const double tts = trace_begin();
  telemetry::SpanTimer span(telemetry_, telemetry::Stage::kTrack);
  if (out_.localized) {
    tracker_update_.assign(n, std::nullopt);
    for (std::size_t i = 1; i < n; ++i)
      tracker_update_[i] = out_.localization.positions[i].xy();
    const double sigma =
        opts_.tracker_stress_sigma_offset_m >= 0.0
            ? out_.localization.normalized_stress + opts_.tracker_stress_sigma_offset_m
            : -1.0;
    tracker_.update(tracker_update_, sigma);
  }
  for (std::size_t i = 1; i < n; ++i) {
    const core::DiverTrack& track = tracker_.track(i);
    if (track.initialized())
      out_.tracked_error_2d[i] = distance(track.position(), m.truth_xy[i]);
  }
  round_elapsed_ += span.stop();
  trace_emit(telemetry::TraceOp::kTrack, tts);
  warm_valid_ = out_.localized;
}

const RoundOutput& RoundPipeline::finish_round() {
  telemetry::ShardStream* const tel = telemetry_;
  if (tel != nullptr) {
    if (tel->timing_enabled()) tel->span(telemetry::Stage::kRound, round_elapsed_);
    tel->count(telemetry::Counter::kRounds);
    if (out_.localized) {
      tel->count(telemetry::Counter::kLocalized);
      tel->count(telemetry::Counter::kSolverIterations,
                 static_cast<std::uint64_t>(out_.localization.solver_iterations));
    } else {
      tel->count(telemetry::Counter::kLocalizeFailures);
    }
  }
  if (tracing()) {
    // Root span: wall time from begin_round to here — under a BatchPlane
    // this includes the interleaved stages of the round's group-mates,
    // which is exactly the queueing the tail debugger wants to see.
    telemetry_->trace_span(trace_id_, telemetry::TraceOp::kRound,
                           telemetry::TraceOp::kNone, trace_ts0_);
  }
  trace_id_ = 0;
  return out_;
}

void RoundPipeline::run_batch(MeasurementModel& model, std::size_t rounds,
                              uwp::Rng& rng, std::vector<double>& samples,
                              double round_dt_s) {
  for (std::size_t r = 0; r < rounds; ++r) {
    model.measure(batch_meas_, rng);
    const RoundOutput& out =
        run_round(batch_meas_, rng, r == 0 ? 0.0 : round_dt_s);
    for (std::size_t i = 1; i < out.error_2d.size(); ++i)
      if (!std::isnan(out.error_2d[i])) samples.push_back(out.error_2d[i]);
  }
}

}  // namespace uwp::pipeline
