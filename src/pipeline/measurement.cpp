#include "pipeline/measurement.hpp"

#include <cmath>

namespace uwp::pipeline {

int fast_vote_sign(Vec2 truth_xy, Vec2 to_dev1, uwp::Rng& rng) {
  const double side = side_of_line(truth_xy, {0, 0}, to_dev1);
  int sign = side > 0 ? 1 : (side < 0 ? -1 : 0);
  const double range = truth_xy.norm();
  const double sin_angle =
      range > 0.1 ? std::abs(side) / (range * to_dev1.norm()) : 0.0;
  const double p_wrong = sin_angle < 0.17 ? 0.30 : 0.03;  // ~10 degrees
  if (rng.bernoulli(p_wrong)) sign = -sign;
  return sign;
}

}  // namespace uwp::pipeline
