// The calibrated fast arrival-error model shared by every non-waveform
// front-end: a per-link detection-failure probability plus a range-dependent
// Gaussian error whose positive skew mimics multipath biasing arrivals late.
// Previously duplicated between sim::RoundOptions (fast mode) and
// des::DesScenarioConfig; both now hold one of these.
#pragma once

#include <cmath>
#include <limits>

#include "util/random.hpp"

namespace uwp::pipeline {

struct ArrivalErrorModel {
  double sigma_m = 0.30;               // base 1-sigma error (meters)
  double sigma_per_m = 0.008;          // sigma growth per meter of range
  double detection_failure_prob = 0.01;

  // One link's arrival-detection error in seconds at the given true range;
  // NaN = detection failure. Draws bernoulli, |normal|, normal — in that
  // order — matching the historical fast-mode streams bit for bit.
  double sample_seconds(double range_m, double sound_speed_mps, uwp::Rng& rng) const {
    if (rng.bernoulli(detection_failure_prob))
      return std::numeric_limits<double>::quiet_NaN();
    const double sigma = sigma_m + sigma_per_m * range_m;
    // Multipath biases arrivals late more often than early.
    const double err_m =
        std::abs(rng.normal(0.0, sigma)) * 0.8 + rng.normal(0.0, sigma * 0.3);
    return err_m / sound_speed_mps;
  }
};

}  // namespace uwp::pipeline
