// Closed-form (single-shot) measurement production: ground truth, depth
// readings, per-link arrival errors, one analytic proto::TimestampProtocol
// round, leader pointing, and flip votes. The per-link error and vote
// sampling are hooks, giving the two closed-form front-ends — the waveform
// PHY model (sim::WaveformMeasurementModel) and the calibrated fast-Gaussian
// FastMeasurementModel below — one shared skeleton with identical rng draw
// order.
#pragma once

#include <optional>

#include "audio/device_audio.hpp"
#include "pipeline/arrival_error.hpp"
#include "pipeline/measurement.hpp"
#include "sensors/depth_sensor_model.hpp"
#include "sensors/pointing_model.hpp"
#include "util/matrix.hpp"

namespace uwp::pipeline {

// Scene geometry + device configuration a closed-form front-end samples
// from. Deliberately free of sim/channel types so the pipeline layer stays
// below the drivers; sim::ScenarioRunner converts its Deployment into one.
struct ClosedFormScene {
  std::vector<Vec3> positions;  // absolute; device 0 = leader, 1 = pointed
  Matrix connectivity;          // connectivity(rx, tx) > 0 gates the link
  std::vector<audio::AudioTimingConfig> audio;
  proto::ProtocolConfig protocol;  // true water sound speed; num_devices = N
  sensors::DepthSensorModel depth_sensor =
      sensors::DepthSensorModel::phone_pressure_in_pouch();
  sensors::PointingModel pointing{};
};

class ClosedFormModel : public MeasurementModel {
 public:
  explicit ClosedFormModel(ClosedFormScene scene);

  std::size_t size() const override { return scene_.positions.size(); }
  const ClosedFormScene& scene() const { return scene_; }
  // Mutable access for scenarios that move devices between rounds; the
  // analytic protocol is rebuilt on the next measure() after a change.
  std::vector<Vec3>& positions();

  void measure(RoundMeasurement& out, uwp::Rng& rng) override;

 protected:
  // One-way arrival error (seconds) for a transmission from `from` received
  // at `to`; NaN = detection failure.
  virtual double arrival_error_s(std::size_t to, std::size_t from, uwp::Rng& rng) = 0;
  // Leader-side dual-mic vote sign for `node` given the measured pointing
  // bearing (0 = uninformative).
  virtual int vote_sign(std::size_t node, double measured_bearing_rad,
                        const RoundMeasurement& m, uwp::Rng& rng) = 0;

  ClosedFormScene scene_;

 private:
  std::optional<proto::TimestampProtocol> protocol_;
  bool positions_dirty_ = true;
  Matrix arrival_err_;  // per-link scratch, NaN = failure
  proto::TimestampProtocol::Workspace proto_ws_;
};

// The calibrated fast-Gaussian front-end: per-link errors from an
// ArrivalErrorModel and flip votes from the fast reliability model — what
// large sweeps use when waveform-level PHY simulation is too slow.
class FastMeasurementModel final : public ClosedFormModel {
 public:
  FastMeasurementModel(ClosedFormScene scene, ArrivalErrorModel arrival = {});

  const ArrivalErrorModel& arrival_model() const { return arrival_; }

 protected:
  double arrival_error_s(std::size_t to, std::size_t from, uwp::Rng& rng) override;
  int vote_sign(std::size_t node, double measured_bearing_rad,
                const RoundMeasurement& m, uwp::Rng& rng) override;

 private:
  ArrivalErrorModel arrival_;
};

}  // namespace uwp::pipeline
