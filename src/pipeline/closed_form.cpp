#include "pipeline/closed_form.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace uwp::pipeline {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

ClosedFormModel::ClosedFormModel(ClosedFormScene scene) : scene_(std::move(scene)) {
  const std::size_t n = scene_.positions.size();
  if (n < 2) throw std::invalid_argument("ClosedFormModel: need >= 2 devices");
  if (scene_.connectivity.rows() != n || scene_.connectivity.cols() != n)
    throw std::invalid_argument("ClosedFormModel: connectivity shape mismatch");
  if (scene_.audio.size() != n)
    throw std::invalid_argument("ClosedFormModel: audio config count != device count");
  if (scene_.protocol.num_devices != n)
    throw std::invalid_argument("ClosedFormModel: protocol.num_devices != device count");
}

std::vector<Vec3>& ClosedFormModel::positions() {
  positions_dirty_ = true;
  return scene_.positions;
}

void ClosedFormModel::measure(RoundMeasurement& out, uwp::Rng& rng) {
  const std::size_t n = scene_.positions.size();

  if (positions_dirty_) {
    std::vector<proto::ProtocolDevice> devices(n);
    for (std::size_t i = 0; i < n; ++i)
      devices[i] = {i, scene_.positions[i], scene_.audio[i]};
    protocol_.emplace(scene_.protocol, std::move(devices));
    positions_dirty_ = false;
  }

  // Ground truth in the leader-origin frame.
  out.truth_pos = scene_.positions;
  out.truth_xy.resize(n);
  out.truth_depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.truth_xy[i] = (scene_.positions[i] - scene_.positions[0]).xy();
    out.truth_depths[i] = scene_.positions[i].z;
  }

  // Measured depths.
  out.depths.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    out.depths[i] = scene_.depth_sensor.read(out.truth_depths[i], rng);

  // Per-link arrival errors (seconds); NaN = detection failure.
  arrival_err_.assign(n, n, kNaN);
  for (std::size_t to = 0; to < n; ++to) {
    for (std::size_t from = 0; from < n; ++from) {
      if (to == from || scene_.connectivity(to, from) <= 0.0) continue;
      arrival_err_(to, from) = arrival_error_s(to, from, rng);
    }
  }

  // Run the distributed timestamp protocol with those errors. The protocol
  // simulation propagates sound at the water's TRUE speed; the leader-side
  // solver later converts timestamps with its CONFIGURED speed.
  protocol_->run_into(
      out.protocol, scene_.connectivity, rng,
      [this](std::size_t at, std::size_t from_id) { return arrival_err_(at, from_id); },
      proto_ws_);

  // Leader pointing toward device 1, plus flip votes.
  const Vec2 to_dev1 = out.truth_xy[1];
  const double true_bearing = bearing(to_dev1);
  out.pointing_bearing_rad = scene_.pointing.point(true_bearing, to_dev1.norm(), rng);

  out.votes.clear();
  for (std::size_t i = 2; i < n; ++i) {
    if (scene_.connectivity(0, i) <= 0.0) continue;
    const int sign = vote_sign(i, out.pointing_bearing_rad, out, rng);
    if (sign != 0) out.votes.push_back({i, sign});
  }
}

FastMeasurementModel::FastMeasurementModel(ClosedFormScene scene,
                                           ArrivalErrorModel arrival)
    : ClosedFormModel(std::move(scene)), arrival_(arrival) {}

double FastMeasurementModel::arrival_error_s(std::size_t to, std::size_t from,
                                             uwp::Rng& rng) {
  const double range = distance(scene_.positions[to], scene_.positions[from]);
  return arrival_.sample_seconds(range, scene_.protocol.sound_speed_mps, rng);
}

int FastMeasurementModel::vote_sign(std::size_t node, double /*measured_bearing_rad*/,
                                    const RoundMeasurement& m, uwp::Rng& rng) {
  return fast_vote_sign(m.truth_xy[node], m.truth_xy[1], rng);
}

}  // namespace uwp::pipeline
