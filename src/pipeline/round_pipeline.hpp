// The leader-side round pipeline — the single owner of the chain
//   §2.4 payload quantization -> proto::RangingSolver -> core::Localizer ->
//   (optional) core::GroupTracker -> per-device error metrics
// for every front-end. sim::ScenarioRunner and des::DesScenario are thin
// adapters over this class; new scenario front-ends plug in a
// MeasurementModel and inherit the whole chain. All solver scratch lives in
// workspaces owned here, so a steady-state round performs near-zero heap
// allocations.
#pragma once

#include <span>
#include <vector>

#include "core/localizer.hpp"
#include "core/tracker.hpp"
#include "pipeline/measurement.hpp"
#include "proto/payload_codec.hpp"
#include "proto/ranging_solver.hpp"

namespace uwp::telemetry {
class ShardStream;
enum class TraceOp : std::uint8_t;
}

namespace uwp::pipeline {

struct PipelineOptions {
  // Protocol configuration with the water's TRUE sound speed (what the
  // measurement produced); the solver runs at true speed + the offset below.
  proto::ProtocolConfig protocol{};
  // Apply the §2.4 payload quantization (2-sample resolution) to the
  // reported timestamps before solving.
  bool quantize_payload = true;
  // Leader-side configured sound speed offset (§2 misestimation error).
  double sound_speed_error_mps = 22.0;
  core::LocalizerOptions localizer{};
  // Run the continuous-tracking stage (per-diver Kalman filters).
  bool track = false;
  core::TrackerConfig tracker{};
  // When >= 0, each round's tracker measurement noise is the localization's
  // normalized stress plus this offset (meters) — noisy rounds get less
  // Kalman gain. Negative = use TrackerConfig::measurement_sigma_m as is.
  double tracker_stress_sigma_offset_m = -1.0;
};

// One round's outputs. Returned by reference from run_round and reused
// across rounds; copy out whatever must outlive the next call.
struct RoundOutput {
  bool localized = false;
  proto::RangingSolution ranging;
  core::LocalizationResult localization;
  // The exact localization input used (distances, weights, depths, pointing,
  // votes) so ablations can re-localize the same measurements.
  core::LocalizationInput localizer_input;
  // Per-device horizontal errors vs ground truth; entry 0 (leader) = 0, NaN
  // when unavailable.
  std::vector<double> error_2d;
  std::vector<double> tracked_error_2d;  // NaN when track is off / cold
  // Per measured link |estimated - true| 1D distance errors (diagnostics).
  std::vector<double> ranging_errors;
};

class RoundPipeline {
 public:
  explicit RoundPipeline(PipelineOptions opts);

  const PipelineOptions& options() const { return opts_; }
  const core::GroupTracker& tracker() const { return tracker_; }

  // Forget cross-round state (the tracker); solver workspaces stay warm.
  void reset();

  // Rebind this pipeline to a new session's options, keeping the solver
  // workspaces' storage warm. This is the arena-reuse entry point for the
  // fleet layer: when one positioning group is evicted, its pipeline slot is
  // rebound to the next admitted group (usually of the same size, so the
  // warmed workspace capacity carries over) instead of being reallocated.
  // Equivalent to *this = RoundPipeline(opts) except for retained capacity;
  // throws std::invalid_argument like the constructor.
  void rebind(const PipelineOptions& opts);

  // Retune the pruned outlier search's fan-out without a full rebind — the
  // control plane's solver knob. Result-neutral: the parallel pruned search
  // is bit-identical at any thread count, so this never changes outputs,
  // only wall-clock. No-op when `n` already matches.
  void set_search_threads(std::size_t n);

  // The §2.4 payload quantization table this pipeline applies, exposed so
  // codecs (fleet wire codec, trace tooling) stay in sync with the round
  // chain's on-the-wire resolution.
  const proto::PayloadCodecConfig& codec_config() const { return codec_; }

  // Attach the owning shard's/worker's telemetry stream (nullptr = off;
  // the default). run_round then emits per-stage span timers plus the
  // round/localized/solver-iteration counters. The binding survives
  // rebind() on purpose: an arena-reused pipeline keeps reporting into the
  // shard that owns it.
  void set_telemetry(telemetry::ShardStream* stream) { telemetry_ = stream; }
  telemetry::ShardStream* telemetry() const { return telemetry_; }

  // Arm the causal trace for the next round: every stage of that round
  // emits a trace span tagged `trace_id` (children of the round-root span)
  // onto the attached stream. finish_round() disarms, so coasts and
  // untraced rounds between explicit arms emit nothing. No-op when the
  // stream is null or its trace plane is off.
  void set_trace(std::uint64_t trace_id) { trace_id_ = trace_id; }
  std::uint64_t trace_id() const { return trace_id_; }

  // Process one measurement. `dt_s` is the time since the previous round
  // (tracker prediction horizon; ignored when tracking is off). Payload
  // quantization mutates m.protocol in place — afterwards it holds exactly
  // the table the leader decoded. The returned reference stays valid until
  // the next run_round/run_batch call.
  const RoundOutput& run_round(RoundMeasurement& m, uwp::Rng& rng, double dt_s = 0.0);

  // Stage-sliced round execution — the same chain run_round composes, split
  // so a pipeline::BatchPlane can interleave many pipelines' rounds stage by
  // stage (all quantize, all ranging, ...) for cache locality. Protocol per
  // round, in order:
  //   begin_round(dt_s)                 tracker predict (warm-start basis)
  //   stage_quantize(m)                 §2.4 payload quantization
  //   stage_ranging(m)                  timestamp table -> distance matrix
  //   stage_localize(m, rng, d, w)      SMACOF + Algorithm 1 + ambiguity;
  //                                     d/w are row-major n*n views of the
  //                                     distance/weight matrices (usually
  //                                     output().ranging's, or a batch
  //                                     plane's staged copy)
  //   stage_track(m)                    Kalman update + tracked errors
  //   finish_round()                    round counters + aggregate span
  // The results are bit-identical to run_round: stages only communicate
  // through this pipeline's own state, so interleaving with other pipelines
  // changes nothing.
  void begin_round(double dt_s);
  void stage_quantize(RoundMeasurement& m);
  void stage_ranging(RoundMeasurement& m);
  void stage_localize(RoundMeasurement& m, uwp::Rng& rng,
                      std::span<const double> distances,
                      std::span<const double> weights);
  void stage_track(RoundMeasurement& m);
  const RoundOutput& finish_round();

  // The last round's outputs (valid between stage calls of a round too).
  const RoundOutput& output() const { return out_; }

  // A round that never happened (e.g. jammed by noise): advance the tracker
  // so it coasts on its motion model.
  void coast(double dt_s);

  // Batched entry point for sim::SweepRunner trials: run `rounds`
  // measure->solve rounds of `model`, appending every finite raw per-device
  // error to `samples`. `round_dt_s` is the tracker prediction interval
  // between consecutive rounds.
  void run_batch(MeasurementModel& model, std::size_t rounds, uwp::Rng& rng,
                 std::vector<double>& samples, double round_dt_s = 0.0);

 private:
  bool tracing() const;
  double trace_begin() const;  // span-start ts, 0.0 when not tracing
  void trace_emit(telemetry::TraceOp op, double ts0_s);

  PipelineOptions opts_;
  proto::RangingSolver solver_;
  proto::PayloadCodecConfig codec_;
  core::Localizer localizer_;
  core::GroupTracker tracker_;
  core::LocalizerWorkspace loc_ws_;
  std::vector<std::optional<Vec2>> tracker_update_;
  RoundMeasurement batch_meas_;
  RoundOutput out_;
  telemetry::ShardStream* telemetry_ = nullptr;
  // Cross-round warm start: true when the previous event was a localized,
  // tracked round (cleared on reset/rebind/coast and failed rounds), so the
  // tracker's predicted geometry is a trustworthy SMACOF seed.
  bool warm_valid_ = false;
  std::vector<Vec2> warm_init_;
  double round_elapsed_ = 0.0;  // summed stage spans for the kRound span
  std::uint64_t trace_id_ = 0;  // armed trace id; 0 = not tracing
  double trace_ts0_ = 0.0;      // round-root span start (collector epoch)
};

}  // namespace uwp::pipeline
