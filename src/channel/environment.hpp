// Environment descriptions for the four deployment sites in the paper's §3
// (swimming pool, dock, viewpoint, boathouse) plus the knobs the multipath
// and noise models need.
#pragma once

#include <string>

#include "channel/sound_speed.hpp"

namespace uwp::channel {

struct Environment {
  std::string name = "generic";
  WaterConditions water;

  // Geometry. z is depth below the surface, positive down, in meters.
  double water_depth_m = 5.0;

  // Boundary reflection amplitude coefficients (linear, applied per bounce).
  // The air-water surface is a near-perfect soft reflector (phase flip); the
  // bottom loses energy into sediment.
  double surface_reflection = -0.85;
  double bottom_reflection = 0.45;

  // Ambient noise (Wenz-style model inputs).
  double shipping_activity = 0.3;  // in [0, 1]; dock/boathouse are busier
  double wind_speed_mps = 3.0;
  // Overall ambient noise RMS in the 1-5 kHz band, linear units relative to
  // a unit-amplitude transmit at 1 m. Controls the SNR-vs-range falloff.
  double noise_rms = 2.5e-3;

  // Spiky transient noise (bubbles, rain, fauna): Poisson event rate and
  // amplitude scale relative to noise_rms.
  double spike_rate_hz = 1.0;
  double spike_amplitude_factor = 40.0;

  // Boundary roughness: per-transmission random delay jitter on reflected
  // paths (waves at the surface, rubble at the bottom), in milliseconds.
  // Near-boundary geometries have strong, barely-detoured reflections whose
  // jitter perturbs the apparent direct path — the Fig 13a depth effect.
  double surface_jitter_ms = 0.18;
  double bottom_jitter_ms = 0.05;

  // Scattered micro-multipath from particles/plants: number of weak random
  // taps appended after each macro path and their relative level.
  int scatter_taps = 12;
  double scatter_relative_db = -16.0;
  double scatter_spread_ms = 12.0;  // delay spread of the scattered tail

  double sound_speed_mps() const { return sound_speed(water); }
};

// Presets matching §3's four sites.
Environment make_pool();       // 23 m span, 1-2.5 m deep, quiet, hard walls
Environment make_dock();       // 50 m span, 9 m deep, boats and seaplanes
Environment make_viewpoint();  // 40 m span, 1-1.5 m deep, shallow
Environment make_boathouse();  // 30 m span, 5 m deep, busy fishing dock

}  // namespace uwp::channel
