#include "channel/propagation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/absorption.hpp"
#include "channel/ambient_noise.hpp"
#include "dsp/fft.hpp"

namespace uwp::channel {

DeviceModel DeviceModel::samsung_s9() {
  DeviceModel m;
  m.name = "samsung_s9";
  return m;
}

DeviceModel DeviceModel::pixel() {
  DeviceModel m;
  m.name = "pixel";
  m.mic_noise_factor = {1.1, 1.15};
  m.case_taps = 4;
  m.case_tap_db = -12.0;
  m.band_lo_hz = 1000.0;
  m.band_hi_hz = 4800.0;
  m.clock_skew_ppm = 35.0;
  return m;
}

DeviceModel DeviceModel::oneplus() {
  DeviceModel m;
  m.name = "oneplus";
  m.mic_noise_factor = {1.2, 1.4};
  m.case_taps = 3;
  m.case_tap_db = -11.0;
  m.band_lo_hz = 1100.0;
  m.band_hi_hz = 5000.0;
  m.clock_skew_ppm = 50.0;
  return m;
}

DeviceModel DeviceModel::watch_ultra() {
  DeviceModel m;
  m.name = "watch_ultra";
  m.mic_noise_factor = {0.9, 1.0};
  m.case_taps = 2;
  m.case_tap_db = -16.0;
  m.band_lo_hz = 900.0;
  m.band_hi_hz = 5500.0;
  m.clock_skew_ppm = 10.0;
  return m;
}

std::vector<double> make_case_impulse_response(const DeviceModel& model, uwp::Rng& rng) {
  const std::size_t len =
      static_cast<std::size_t>(model.case_spread_samples * 1.5) + 4;
  std::vector<double> ir(len, 0.0);
  ir[0] = 1.0;
  const double level = db_to_amplitude(model.case_tap_db);
  for (int i = 0; i < model.case_taps; ++i) {
    const std::size_t pos =
        1 + static_cast<std::size_t>(rng.uniform(2.0, model.case_spread_samples));
    const double mag = level * std::exp(rng.normal(0.0, 0.4));
    ir[std::min(pos, len - 1)] += rng.bernoulli(0.5) ? mag : -mag;
  }
  return ir;
}

LinkSimulator::LinkSimulator(Environment env, double fs_hz)
    : env_(std::move(env)), fs_hz_(fs_hz) {
  if (fs_hz_ <= 0.0) throw std::invalid_argument("LinkSimulator: fs must be positive");
}

namespace {

// Speaker directivity: smooth cardioid-style loss with angle off boresight,
// up to ~8 dB at 180 degrees (matches the modest orientation effect in
// Fig 14a, where the worst case is the upward-facing phone, not the rotated
// one).
double directivity_db(double off_axis_rad) {
  const double c = std::cos(off_axis_rad);
  return -4.0 * (1.0 - c);  // 0 dB on-axis, -8 dB reversed
}

}  // namespace

Reception LinkSimulator::transmit(std::span<const double> waveform,
                                  const LinkConfig& cfg, uwp::Rng& rng,
                                  double tail_s) const {
  if (waveform.empty()) throw std::invalid_argument("transmit: empty waveform");

  Reception rec;
  rec.fs_hz = fs_hz_;
  rec.true_range_m = uwp::distance(cfg.tx_pos, cfg.rx_pos);

  const double c = env_.sound_speed_mps();
  const uwp::Vec2 axis_half = cfg.mic_axis * (cfg.mic_separation_m / 2.0);

  // Per-transmission path fades, keyed by bounce signature so both mics see
  // the same physical path realization.
  std::array<double, 32> path_fade_db{};
  path_fade_db[0] = rng.normal(0.0, cfg.direct_fade_sigma_db);
  if (rng.bernoulli(cfg.shadow_probability))
    path_fade_db[0] -= rng.uniform(cfg.shadow_db_lo, cfg.shadow_db_hi);
  for (std::size_t k = 1; k < path_fade_db.size(); ++k)
    path_fade_db[k] = rng.normal(0.0, cfg.reflection_fade_sigma_db);
  // Boundary jitter is a property of the water surface at this instant, so
  // both microphones must see identical draws: replay a forked stream.
  const uwp::Rng jitter_seed = rng.fork();

  for (int mic_idx = 0; mic_idx < 2; ++mic_idx) {
    // Mic 1 sits at -axis/2, mic 2 at +axis/2 from the device center.
    const double sign = mic_idx == 0 ? -1.0 : 1.0;
    uwp::Vec3 mic_pos = cfg.rx_pos;
    mic_pos.x += sign * axis_half.x;
    mic_pos.y += sign * axis_half.y;

    MultipathOptions opts;
    opts.max_bounces = cfg.max_bounces;
    opts.occlusion_db = cfg.occlusion_db;
    std::vector<PathTap> taps = image_method_taps(cfg.tx_pos, mic_pos, env_, opts);

    // Transmitter orientation effects.
    const double az_loss_db = directivity_db(cfg.speaker_azimuth_off_rad);
    for (PathTap& t : taps) {
      const std::size_t fade_key = std::min<std::size_t>(
          static_cast<std::size_t>(t.surface_bounces * 2 + t.bottom_bounces * 7),
          path_fade_db.size() - 1);
      t.gain *= db_to_amplitude(az_loss_db + cfg.tx_level_db +
                                path_fade_db[t.is_direct ? 0 : fade_key]);
      if (cfg.speaker_faces_up) {
        // Pointing the speaker at the surface: direct path loses energy,
        // surface-bounced paths gain it.
        if (t.is_direct)
          t.gain *= db_to_amplitude(-5.0);
        else if (t.surface_bounces > 0)
          t.gain *= db_to_amplitude(3.0);
      }
    }
    rec.true_tof_s[mic_idx] =
        uwp::distance(cfg.tx_pos, mic_pos) / c;

    uwp::Rng jitter_rng = jitter_seed;
    taps = apply_boundary_jitter(std::move(taps), env_, jitter_rng);
    taps = scatter_tail(taps, env_, rng);

    // Render impulse response long enough for the last tap.
    const double max_delay = taps.back().delay_s;
    const std::size_t ir_len = static_cast<std::size_t>(max_delay * fs_hz_) + 8;
    const std::vector<double> ir = render_impulse_response(taps, fs_hz_, ir_len);

    std::vector<double> sig = uwp::dsp::fft_convolve(waveform, ir);

    // Waterproof-case reverberation differs per mic (paper §2.2).
    const std::vector<double> case_ir = make_case_impulse_response(cfg.rx_device, rng);
    sig = uwp::dsp::fft_convolve(sig, case_ir);

    const std::size_t tail = static_cast<std::size_t>(tail_s * fs_hz_);
    sig.resize(sig.size() + tail, 0.0);

    // Per-mic ambient + spiky noise.
    Environment noisy = env_;
    noisy.noise_rms *= cfg.rx_device.mic_noise_factor[static_cast<std::size_t>(mic_idx)];
    const std::vector<double> ambient = ambient_noise(noisy, sig.size(), fs_hz_, rng);
    const std::vector<double> spikes = spike_noise(noisy, sig.size(), fs_hz_, rng);
    for (std::size_t i = 0; i < sig.size(); ++i) sig[i] += ambient[i] + spikes[i];

    rec.mic[static_cast<std::size_t>(mic_idx)] = std::move(sig);
  }
  return rec;
}

Reception LinkSimulator::noise_only(double duration_s, const LinkConfig& cfg,
                                    uwp::Rng& rng) const {
  Reception rec;
  rec.fs_hz = fs_hz_;
  const std::size_t n = static_cast<std::size_t>(duration_s * fs_hz_);
  for (int mic_idx = 0; mic_idx < 2; ++mic_idx) {
    Environment noisy = env_;
    noisy.noise_rms *= cfg.rx_device.mic_noise_factor[static_cast<std::size_t>(mic_idx)];
    std::vector<double> sig = ambient_noise(noisy, n, fs_hz_, rng);
    const std::vector<double> spikes = spike_noise(noisy, n, fs_hz_, rng);
    for (std::size_t i = 0; i < n; ++i) sig[i] += spikes[i];
    rec.mic[static_cast<std::size_t>(mic_idx)] = std::move(sig);
  }
  return rec;
}

}  // namespace uwp::channel
