#include "channel/environment.hpp"

namespace uwp::channel {

Environment make_pool() {
  Environment e;
  e.name = "pool";
  e.water = {26.0, 0.1, 1.5};
  e.water_depth_m = 2.0;
  // Concrete walls/floor reflect strongly -> dense reverb in a small volume.
  e.surface_reflection = -0.9;
  e.bottom_reflection = 0.7;
  e.shipping_activity = 0.0;
  e.wind_speed_mps = 0.0;
  e.noise_rms = 2.0e-2;
  e.spike_rate_hz = 0.2;
  e.scatter_taps = 24;
  e.scatter_relative_db = -8.0;
  e.scatter_spread_ms = 20.0;
  return e;
}

Environment make_dock() {
  Environment e;
  e.name = "dock";
  e.water = {12.0, 0.2, 4.0};
  e.water_depth_m = 9.0;
  e.surface_reflection = -0.85;
  e.bottom_reflection = 0.4;  // soft lake bed
  e.shipping_activity = 0.5;  // boats and seaplanes
  e.wind_speed_mps = 4.0;
  e.noise_rms = 2.2e-2;
  e.spike_rate_hz = 1.5;
  e.scatter_taps = 22;
  e.scatter_relative_db = -9.0;
  e.scatter_spread_ms = 12.0;
  return e;
}

Environment make_viewpoint() {
  Environment e;
  e.name = "viewpoint";
  e.water = {14.0, 0.2, 1.0};
  e.water_depth_m = 1.25;
  // Very shallow: boundaries are close, multipath arrives almost on top of
  // the direct path.
  e.surface_reflection = -0.88;
  e.bottom_reflection = 0.5;
  e.shipping_activity = 0.2;
  e.wind_speed_mps = 3.0;
  e.noise_rms = 2.0e-2;
  e.spike_rate_hz = 1.0;
  e.scatter_taps = 24;
  e.scatter_relative_db = -8.0;
  e.scatter_spread_ms = 8.0;
  return e;
}

Environment make_boathouse() {
  Environment e;
  e.name = "boathouse";
  e.water = {13.0, 0.2, 2.5};
  e.water_depth_m = 5.0;
  e.surface_reflection = -0.85;
  e.bottom_reflection = 0.45;
  e.shipping_activity = 0.7;  // busy fishing/kayaking site
  e.wind_speed_mps = 3.5;
  e.noise_rms = 3.2e-2;
  e.spike_rate_hz = 2.5;
  e.scatter_taps = 22;
  e.scatter_relative_db = -9.0;
  e.scatter_spread_ms = 12.0;
  return e;
}

}  // namespace uwp::channel
