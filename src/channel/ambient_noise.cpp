#include "channel/ambient_noise.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "util/stats.hpp"

namespace uwp::channel {

double wenz_psd_db(double f_hz, double shipping, double wind_mps) {
  const double f_khz = std::max(f_hz, 1.0) / 1000.0;
  const double lf = std::log10(f_khz);
  // Component levels follow the classic Wenz/Coates parameterization.
  const double turbulence = 17.0 - 30.0 * lf;
  const double ship = 40.0 + 20.0 * (shipping - 0.5) + 26.0 * lf -
                      60.0 * std::log10(f_khz + 0.03);
  const double wind = 50.0 + 7.5 * std::sqrt(std::max(wind_mps, 0.0)) + 20.0 * lf -
                      40.0 * std::log10(f_khz + 0.4);
  const double thermal = -15.0 + 20.0 * lf;
  const double total_power = std::pow(10.0, turbulence / 10.0) +
                             std::pow(10.0, ship / 10.0) +
                             std::pow(10.0, wind / 10.0) +
                             std::pow(10.0, thermal / 10.0);
  return 10.0 * std::log10(total_power);
}

std::vector<double> ambient_noise(const Environment& env, std::size_t n,
                                  double fs_hz, uwp::Rng& rng) {
  if (n == 0) return {};
  // White Gaussian -> shape amplitude spectrum by sqrt(PSD) -> back to time.
  const std::size_t m = uwp::dsp::next_pow2(n);
  std::vector<uwp::dsp::cplx> spec(m);
  for (std::size_t k = 0; k <= m / 2; ++k) {
    const double f = static_cast<double>(k) * fs_hz / static_cast<double>(m);
    const double shape =
        std::pow(10.0, wenz_psd_db(f, env.shipping_activity, env.wind_speed_mps) / 20.0);
    const uwp::dsp::cplx g{rng.normal(), rng.normal()};
    spec[k] = g * shape;
  }
  // Hermitian symmetry for a real signal.
  for (std::size_t k = m / 2 + 1; k < m; ++k) spec[k] = std::conj(spec[m - k]);
  spec[0] = {spec[0].real(), 0.0};
  spec[m / 2] = {spec[m / 2].real(), 0.0};

  std::vector<double> noise = uwp::dsp::ifft_real(spec);
  noise.resize(n);
  const double r = uwp::rms(noise);
  const double scale = r > 0.0 ? env.noise_rms / r : 0.0;
  for (double& v : noise) v *= scale;
  return noise;
}

std::vector<double> spike_noise(const Environment& env, std::size_t n,
                                double fs_hz, uwp::Rng& rng) {
  std::vector<double> out(n, 0.0);
  if (n == 0 || env.spike_rate_hz <= 0.0) return out;
  const double duration_s = static_cast<double>(n) / fs_hz;
  double t = rng.exponential(env.spike_rate_hz);
  while (t < duration_s) {
    const std::size_t start = static_cast<std::size_t>(t * fs_hz);
    // Lognormal amplitude: occasionally much louder than the ambient floor,
    // which is what defeats naive correlation thresholds.
    const double amp = env.noise_rms * env.spike_amplitude_factor *
                       std::exp(rng.normal(0.0, 0.7));
    const double decay_samples = rng.uniform(20.0, 200.0);
    const double f = rng.uniform(800.0, 6000.0);  // broadband clicks
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const std::size_t burst_len =
        std::min(static_cast<std::size_t>(decay_samples * 6.0), n - start);
    for (std::size_t i = 0; i < burst_len; ++i) {
      const double env_amp = std::exp(-static_cast<double>(i) / decay_samples);
      out[start + i] += amp * env_amp *
                        std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) /
                                     fs_hz + phase);
    }
    t += rng.exponential(env.spike_rate_hz);
  }
  return out;
}

}  // namespace uwp::channel
