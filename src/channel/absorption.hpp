// Frequency-dependent seawater absorption (Thorp's formula) and geometric
// spreading loss. At the paper's 1-5 kHz band and <50 m ranges absorption is
// tiny, but we model it so the simulator generalizes to longer ranges.
#pragma once

namespace uwp::channel {

// Thorp absorption coefficient in dB/km at frequency f (Hz).
double thorp_absorption_db_per_km(double f_hz);

// Spherical spreading loss in dB over range r (meters), referenced to 1 m.
double spreading_loss_db(double range_m);

// Total one-way transmission loss in dB at frequency f over range r.
double transmission_loss_db(double range_m, double f_hz);

// Convert dB to linear amplitude ratio.
double db_to_amplitude(double db);
double amplitude_to_db(double amp);

}  // namespace uwp::channel
