// Image-method multipath model for a shallow-water waveguide bounded by the
// surface (z = 0) and the bottom (z = water_depth). Produces the discrete
// path arrivals (delay, amplitude) between a source and a receiver point;
// the propagation engine turns these into sampled impulse responses.
#pragma once

#include <vector>

#include "channel/environment.hpp"
#include "util/geometry.hpp"
#include "util/random.hpp"

namespace uwp::channel {

struct PathTap {
  double delay_s = 0.0;
  double gain = 0.0;  // signed linear amplitude (surface bounces flip phase)
  int surface_bounces = 0;
  int bottom_bounces = 0;
  bool is_direct = false;
};

struct MultipathOptions {
  int max_bounces = 4;       // reflection order cutoff
  double occlusion_db = 0.0; // extra attenuation applied to the direct path
                             // (rocks/people blocking the line of sight)
  // A blocking sheet/rock usually spans the upper water column, so surface-
  // only bounces are blocked along with the direct path; the signal detours
  // via the bottom, inflating the measured distance by meters (Fig 19a).
  bool occlusion_blocks_surface = true;
  // Per-arrival incoherent scattering tail toggles (taken from Environment).
  bool include_scatter = true;
};

// Deterministic macro-paths (direct + boundary images). Positions use z as
// depth below surface; both endpoints must lie inside the water column.
// Amplitudes include spreading, Thorp absorption at band center, boundary
// losses and the occlusion penalty on the direct path. Sorted by delay.
std::vector<PathTap> image_method_taps(uwp::Vec3 tx, uwp::Vec3 rx,
                                       const Environment& env,
                                       const MultipathOptions& opts);

// Random scattering tail appended to a macro-path profile: `env.scatter_taps`
// weak taps exponentially distributed over `env.scatter_spread_ms` after the
// first arrival, at `env.scatter_relative_db` relative to it.
std::vector<PathTap> scatter_tail(const std::vector<PathTap>& macro,
                                  const Environment& env, uwp::Rng& rng);

// Apply boundary-roughness delay jitter (waves, rubble) to reflected paths:
// each tap with surface bounces shifts by N(0, surface_jitter_ms) per bounce,
// bottom bounces by N(0, bottom_jitter_ms). Direct paths are untouched.
// The shifts should be drawn once per transmission (shared across mics).
std::vector<PathTap> apply_boundary_jitter(std::vector<PathTap> taps,
                                           const Environment& env, uwp::Rng& rng);

// Render taps into a sampled impulse response of length `len` at rate
// `fs_hz`, with sub-sample tap placement via a 4-tap cubic kernel.
std::vector<double> render_impulse_response(const std::vector<PathTap>& taps,
                                            double fs_hz, std::size_t len);

}  // namespace uwp::channel
