#include "channel/absorption.hpp"

#include <algorithm>
#include <cmath>

namespace uwp::channel {

double thorp_absorption_db_per_km(double f_hz) {
  const double f_khz = f_hz / 1000.0;
  const double f2 = f_khz * f_khz;
  // Thorp (1967), valid above a few hundred Hz.
  return 0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003;
}

double spreading_loss_db(double range_m) {
  return 20.0 * std::log10(std::max(range_m, 1.0));
}

double transmission_loss_db(double range_m, double f_hz) {
  return spreading_loss_db(range_m) +
         thorp_absorption_db_per_km(f_hz) * range_m / 1000.0;
}

double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

double amplitude_to_db(double amp) { return 20.0 * std::log10(std::max(amp, 1e-30)); }

}  // namespace uwp::channel
