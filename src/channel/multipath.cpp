#include "channel/multipath.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/absorption.hpp"

namespace uwp::channel {

namespace {

// Band center of the paper's 1-5 kHz transmit band; used for the broadband
// absorption approximation.
constexpr double kBandCenterHz = 3000.0;

struct Image {
  double z;  // image source depth (may be negative / beyond bottom)
  int surface_bounces;
  int bottom_bounces;
};

// Enumerate boundary images by alternating reflections, starting with the
// surface chain and the bottom chain. 2*max_bounces images + the source.
std::vector<Image> enumerate_images(double z_src, double depth, int max_bounces) {
  std::vector<Image> images;
  images.push_back({z_src, 0, 0});
  // Chain that reflects first off the surface (z -> -z), then alternates.
  double z = z_src;
  int surf = 0, bot = 0;
  bool next_surface = true;
  for (int k = 0; k < max_bounces; ++k) {
    if (next_surface) {
      z = -z;
      ++surf;
    } else {
      z = 2.0 * depth - z;
      ++bot;
    }
    images.push_back({z, surf, bot});
    next_surface = !next_surface;
  }
  // Chain that reflects first off the bottom.
  z = z_src;
  surf = bot = 0;
  next_surface = false;
  for (int k = 0; k < max_bounces; ++k) {
    if (next_surface) {
      z = -z;
      ++surf;
    } else {
      z = 2.0 * depth - z;
      ++bot;
    }
    images.push_back({z, surf, bot});
    next_surface = !next_surface;
  }
  return images;
}

}  // namespace

std::vector<PathTap> image_method_taps(uwp::Vec3 tx, uwp::Vec3 rx,
                                       const Environment& env,
                                       const MultipathOptions& opts) {
  if (tx.z < 0.0 || tx.z > env.water_depth_m || rx.z < 0.0 || rx.z > env.water_depth_m)
    throw std::invalid_argument("image_method_taps: endpoint outside water column");

  const double c = env.sound_speed_mps();
  const double horizontal = (tx.xy() - rx.xy()).norm();

  std::vector<PathTap> taps;
  for (const Image& img : enumerate_images(tx.z, env.water_depth_m, opts.max_bounces)) {
    const double dz = img.z - rx.z;
    const double path_len = std::sqrt(horizontal * horizontal + dz * dz);
    const double loss_db = transmission_loss_db(path_len, kBandCenterHz);
    double gain = db_to_amplitude(-loss_db);
    // Signed boundary coefficients: surface flips phase.
    gain *= std::pow(env.surface_reflection, img.surface_bounces) *
            std::pow(env.bottom_reflection, img.bottom_bounces);
    const bool direct = img.surface_bounces == 0 && img.bottom_bounces == 0;
    const bool surface_only = img.bottom_bounces == 0 && img.surface_bounces > 0;
    if (opts.occlusion_db != 0.0 &&
        (direct || (surface_only && opts.occlusion_blocks_surface)))
      gain *= db_to_amplitude(-opts.occlusion_db);
    taps.push_back({path_len / c, gain, img.surface_bounces, img.bottom_bounces, direct});
  }
  std::sort(taps.begin(), taps.end(),
            [](const PathTap& a, const PathTap& b) { return a.delay_s < b.delay_s; });
  return taps;
}

std::vector<PathTap> scatter_tail(const std::vector<PathTap>& macro,
                                  const Environment& env, uwp::Rng& rng) {
  std::vector<PathTap> out = macro;
  if (macro.empty() || env.scatter_taps <= 0) return out;

  // Reference the strongest macro arrival for the relative level.
  double ref_gain = 0.0;
  double first_delay = macro.front().delay_s;
  for (const PathTap& t : macro) ref_gain = std::max(ref_gain, std::abs(t.gain));
  const double level = ref_gain * db_to_amplitude(env.scatter_relative_db);
  const double spread_s = env.scatter_spread_ms * 1e-3;

  for (int i = 0; i < env.scatter_taps; ++i) {
    PathTap t;
    // Exponential delay profile after the first arrival.
    t.delay_s = first_delay + rng.exponential(1.0 / (spread_s / 3.0));
    if (t.delay_s > first_delay + spread_s) t.delay_s = first_delay + rng.uniform(0.0, spread_s);
    // Rayleigh-ish magnitude with random sign.
    const double mag = level * std::abs(rng.normal(0.0, 0.6));
    t.gain = rng.bernoulli(0.5) ? mag : -mag;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const PathTap& a, const PathTap& b) { return a.delay_s < b.delay_s; });
  return out;
}

std::vector<PathTap> apply_boundary_jitter(std::vector<PathTap> taps,
                                           const Environment& env, uwp::Rng& rng) {
  for (PathTap& t : taps) {
    if (t.is_direct) continue;
    double jitter_ms = 0.0;
    for (int b = 0; b < t.surface_bounces; ++b)
      jitter_ms += rng.normal(0.0, env.surface_jitter_ms);
    for (int b = 0; b < t.bottom_bounces; ++b)
      jitter_ms += rng.normal(0.0, env.bottom_jitter_ms);
    t.delay_s = std::max(t.delay_s + jitter_ms * 1e-3, 0.0);
  }
  std::sort(taps.begin(), taps.end(),
            [](const PathTap& a, const PathTap& b) { return a.delay_s < b.delay_s; });
  return taps;
}

std::vector<double> render_impulse_response(const std::vector<PathTap>& taps,
                                            double fs_hz, std::size_t len) {
  std::vector<double> h(len, 0.0);
  for (const PathTap& t : taps) {
    const double pos = t.delay_s * fs_hz;
    const auto base = static_cast<std::ptrdiff_t>(std::floor(pos)) - 1;
    const double frac = pos - std::floor(pos);
    // 4-tap cubic (Catmull-Rom) fractional placement kernel: distributes the
    // tap energy so sub-sample delays are preserved by correlation.
    const double u = frac;
    const double k0 = 0.5 * (-u * u * u + 2 * u * u - u);
    const double k1 = 0.5 * (3 * u * u * u - 5 * u * u + 2);
    const double k2 = 0.5 * (-3 * u * u * u + 4 * u * u + u);
    const double k3 = 0.5 * (u * u * u - u * u);
    const double kernel[4] = {k0, k1, k2, k3};
    for (int j = 0; j < 4; ++j) {
      const std::ptrdiff_t idx = base + j;
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(len))
        h[static_cast<std::size_t>(idx)] += t.gain * kernel[j];
    }
  }
  return h;
}

}  // namespace uwp::channel
