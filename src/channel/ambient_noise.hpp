// Ambient underwater noise synthesis: a Wenz-style power spectral density
// (turbulence + shipping + wind + thermal components) realized as colored
// Gaussian noise via FFT shaping, plus a Poisson process of spiky transients
// (bubbles, rain, snapping fauna) that the paper calls out as the cause of
// false-positive correlation peaks (§2.2.1).
#pragma once

#include <cstddef>
#include <vector>

#include "channel/environment.hpp"
#include "util/random.hpp"

namespace uwp::channel {

// Wenz composite noise spectral density (dB re arbitrary) at frequency f.
// `shipping` in [0,1], `wind_mps` >= 0. Shape matters; absolute level is
// normalized away by the caller.
double wenz_psd_db(double f_hz, double shipping, double wind_mps);

// Colored Gaussian ambient noise, `n` samples at `fs_hz`, normalized so its
// RMS equals `env.noise_rms`.
std::vector<double> ambient_noise(const Environment& env, std::size_t n,
                                  double fs_hz, uwp::Rng& rng);

// Spiky transient noise: Poisson arrivals at env.spike_rate_hz, each a short
// exponentially decaying oscillatory burst with lognormal amplitude around
// env.spike_amplitude_factor * env.noise_rms.
std::vector<double> spike_noise(const Environment& env, std::size_t n,
                                double fs_hz, uwp::Rng& rng);

}  // namespace uwp::channel
