// Speed of sound in water via Wilson's equation (paper §2):
//   c = 1449 + 4.6 T - 0.055 T^2 + 0.0003 T^3 + 1.39 (S - 35) + 0.017 D
// with T in Celsius, S in parts-per-thousand salinity, D depth in meters.
#pragma once

namespace uwp::channel {

struct WaterConditions {
  double temperature_c = 15.0;
  double salinity_ppt = 0.5;  // fresh-water lakes in the paper's deployments
  double depth_m = 2.0;
};

// Wilson's equation. Valid over recreational-dive conditions; the paper notes
// the < 2% relative error envelope at <= 40 m depths.
double sound_speed(const WaterConditions& w);

// Convenience: paper-style nominal 1500 m/s reference.
inline constexpr double kNominalSoundSpeed = 1500.0;

}  // namespace uwp::channel
