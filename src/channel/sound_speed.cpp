#include "channel/sound_speed.hpp"

namespace uwp::channel {

double sound_speed(const WaterConditions& w) {
  const double t = w.temperature_c;
  return 1449.0 + 4.6 * t - 0.055 * t * t + 0.0003 * t * t * t +
         1.39 * (w.salinity_ppt - 35.0) + 0.017 * w.depth_m;
}

}  // namespace uwp::channel
