// End-to-end acoustic link simulation: transmit waveform -> multipath ->
// per-microphone reception with ambient + spiky noise, waterproof-case
// reverberation, speaker directivity and per-mic noise profiles. This is the
// substitute for real underwater deployments; the receiver-side algorithms
// (detection, channel estimation, direct-path search) consume its output
// exactly as they would consume real microphone buffers.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "channel/environment.hpp"
#include "channel/multipath.hpp"
#include "util/geometry.hpp"
#include "util/random.hpp"

namespace uwp::channel {

// Per-device acoustic characteristics. Fig 14b evaluates three phone models;
// these presets differ in band response, mic noise, and case reverb, the
// properties the paper attributes differences to.
struct DeviceModel {
  std::string name = "samsung_s9";
  // Noise floor multipliers for the two microphones (bottom, top). The paper
  // notes each microphone may have a different hardware noise profile.
  std::array<double, 2> mic_noise_factor{1.0, 1.25};
  // Waterproof-case reverberation: number of case taps and their level.
  int case_taps = 3;
  double case_tap_db = -13.0;
  double case_spread_samples = 35.0;
  // Speaker band edges (device frequency response rolls off outside).
  double band_lo_hz = 900.0;
  double band_hi_hz = 5200.0;
  // Sample clock skew in ppm (microphone); per [42] Android is 1-80 ppm.
  double clock_skew_ppm = 20.0;

  static DeviceModel samsung_s9();
  static DeviceModel pixel();
  static DeviceModel oneplus();
  static DeviceModel watch_ultra();
};

struct LinkConfig {
  uwp::Vec3 tx_pos;  // transmitting device (speaker) position, z = depth
  uwp::Vec3 rx_pos;  // receiving device center position
  // Horizontal unit vector from mic 1 (bottom) to mic 2 (top) of the
  // receiving device; fixes the left/right geometry for flip disambiguation.
  uwp::Vec2 mic_axis{1.0, 0.0};
  double mic_separation_m = 0.16;  // paper's d = 16 cm

  double tx_level_db = 0.0;   // source level offset (0 = unit amp at 1 m)
  double occlusion_db = 0.0;  // direct-path blocking penalty

  // Transmitter orientation for Fig 14a. Azimuth error is the horizontal
  // angle between the speaker axis and the direction to the receiver;
  // faces_up models the phone pointed at the surface.
  double speaker_azimuth_off_rad = 0.0;
  bool speaker_faces_up = false;

  DeviceModel rx_device{};
  DeviceModel tx_device{};

  int max_bounces = 4;

  // Slow per-link fading (body shadowing, pouch coupling, turbidity): each
  // macro path draws a lognormal gain once per transmission, shared by both
  // microphones (the paths are physically common). Sigma in dB.
  double direct_fade_sigma_db = 2.5;
  double reflection_fade_sigma_db = 4.0;

  // Intermittent deep shadowing of the direct path (a diver's body, kelp,
  // the pouch twisting): the paper's "direct path can be severely
  // attenuated" regime where the strongest arrival is a reflection. Drawn
  // once per transmission, common to both mics.
  double shadow_probability = 0.25;
  double shadow_db_lo = 4.0;
  double shadow_db_hi = 10.0;
};

struct Reception {
  // Microphone streams time-aligned to the transmit origin: sample index i
  // corresponds to time i / fs after the first transmit sample left the
  // speaker. Includes the propagation gap, the signal, and a noise tail.
  std::array<std::vector<double>, 2> mic;
  double fs_hz = 0.0;
  // Ground truth for evaluation.
  double true_range_m = 0.0;               // device-center to device-center
  std::array<double, 2> true_tof_s{0, 0};  // direct-path delay per mic
};

class LinkSimulator {
 public:
  LinkSimulator(Environment env, double fs_hz);

  const Environment& environment() const { return env_; }
  double fs() const { return fs_hz_; }

  // Simulate `waveform` (unit-scale samples) traveling from cfg.tx_pos to the
  // two microphones of the receiving device. `tail_s` seconds of extra noise
  // are appended after the signal so detector windows never run out.
  Reception transmit(std::span<const double> waveform, const LinkConfig& cfg,
                     uwp::Rng& rng, double tail_s = 0.1) const;

  // Noise-only reception of `duration_s` seconds (for false-positive tests).
  Reception noise_only(double duration_s, const LinkConfig& cfg, uwp::Rng& rng) const;

 private:
  Environment env_;
  double fs_hz_;
};

// Short waterproof-case impulse response for one microphone: a unit direct
// tap plus `model.case_taps` random reflections. Deterministic per (rng).
std::vector<double> make_case_impulse_response(const DeviceModel& model, uwp::Rng& rng);

}  // namespace uwp::channel
