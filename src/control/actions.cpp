#include "control/actions.hpp"

#include <cstring>

namespace uwp::control {
namespace {

// Bit-pattern double equality: the log contract is *byte* identity, so
// -0.0 vs +0.0 (or any NaN payload drift) must count as different.
bool dbits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace

const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kCostAware:
      return "cost_aware";
    case CachePolicy::kCount_:
      break;
  }
  return "unknown";
}

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kArenaCachePolicy:
      return "arena_cache_policy";
    case ActionKind::kArenaRetain:
      return "arena_retain";
    case ActionKind::kShaperRate:
      return "shaper_rate";
    case ActionKind::kShaperBurst:
      return "shaper_burst";
    case ActionKind::kShaperMaxDefers:
      return "shaper_max_defers";
    case ActionKind::kSearchThreads:
      return "search_threads";
    case ActionKind::kCount_:
      break;
  }
  return "unknown";
}

bool bit_equal(const ControlAction& a, const ControlAction& b) {
  return a.window == b.window && a.kind == b.kind && dbits_equal(a.value, b.value);
}

bool bit_equal(const ShardControls& a, const ShardControls& b) {
  return a.cache_policy == b.cache_policy && a.arena_retain == b.arena_retain &&
         dbits_equal(a.shaper_rate, b.shaper_rate) &&
         dbits_equal(a.shaper_burst, b.shaper_burst) &&
         a.shaper_max_defers == b.shaper_max_defers &&
         a.search_threads == b.search_threads;
}

}  // namespace uwp::control
