#include "control/policies.hpp"

#include <algorithm>

namespace uwp::control {
namespace {

std::uint64_t get(const telemetry::Snapshot& snap, telemetry::Counter c) {
  return snap.counts[static_cast<std::size_t>(c)];
}

}  // namespace

void ArenaTunerPolicy::observe(std::uint64_t /*window*/,
                               const telemetry::Snapshot& snap,
                               ShardControls& c) {
  using telemetry::Counter;
  const std::uint64_t admits = get(snap, Counter::kAdmits);
  const std::uint64_t evicts = get(snap, Counter::kEvicts);
  const std::uint64_t admit_dev = get(snap, Counter::kAdmitDevices);
  const std::uint64_t evict_dev = get(snap, Counter::kEvictDevices);

  if (evicts >= cfg_.evict_storm) {
    // Storm: double retention so the wave of released pipelines survives to
    // serve the readmissions that usually follow.
    const std::size_t cur =
        c.arena_retain == 0 ? cfg_.retain_base : c.arena_retain;
    c.arena_retain = std::min(cfg_.retain_max,
                              std::max(cur * 2, cfg_.retain_base));
  } else if (admits == 0 && evicts == 0 && c.arena_retain > cfg_.retain_base) {
    // Idle: decay halfway back toward the base so a one-off storm doesn't
    // pin memory forever.
    c.arena_retain = std::max(cfg_.retain_base, c.arena_retain / 2);
  }

  if (admits > 0 && evicts > 0) {
    // Mix drift: cross-multiplied integer compare of mean admitted group
    // size (admit_dev/admits) vs mean evicted size (evict_dev/evicts);
    // > 9/8 relative divergence counts as drift. Integer math keeps the
    // decision platform-exact.
    const std::uint64_t lhs = admit_dev * evicts;
    const std::uint64_t rhs = evict_dev * admits;
    const std::uint64_t hi = std::max(lhs, rhs);
    const std::uint64_t lo = std::min(lhs, rhs);
    const bool drift = hi * 8 > lo * 9;
    c.cache_policy = drift ? CachePolicy::kCostAware : CachePolicy::kLfu;
  }
}

void ShaperTunerPolicy::observe(std::uint64_t /*window*/,
                                const telemetry::Snapshot& snap,
                                ShardControls& c) {
  using telemetry::Counter;
  if (base_.shaper_rate <= 0.0) return;  // shaping disabled at baseline
  const std::uint64_t shed = get(snap, Counter::kIngestShed);
  const std::uint64_t deferred = get(snap, Counter::kIngestDeferred);
  const std::uint64_t admitted = get(snap, Counter::kIngestAdmitted);
  const std::uint64_t rounds = get(snap, Counter::kRounds);

  const double rate_max = base_.shaper_rate * cfg_.rate_max_multiplier;
  const double burst_max = base_.shaper_burst * cfg_.rate_max_multiplier;
  if (shed > 0 && rounds >= admitted) {
    // Frames shed while the workers drained everything they were given:
    // the bucket, not the solvers, was the bottleneck. Open it up.
    c.shaper_rate = std::min(rate_max, c.shaper_rate * cfg_.rate_step);
    c.shaper_burst = std::min(burst_max, c.shaper_burst + 2.0);
    c.shaper_max_defers =
        std::min(base_.shaper_max_defers * 4, c.shaper_max_defers + 2);
  } else if (shed == 0 && deferred == 0) {
    // Quiet window: step back toward the configured baseline.
    c.shaper_rate = std::max(base_.shaper_rate, c.shaper_rate / cfg_.rate_step);
    c.shaper_burst = std::max(base_.shaper_burst, c.shaper_burst - 2.0);
    if (c.shaper_max_defers > base_.shaper_max_defers)
      c.shaper_max_defers = c.shaper_max_defers - 1;
  }
}

void SolverTunerPolicy::observe(std::uint64_t /*window*/,
                                const telemetry::Snapshot& snap,
                                ShardControls& c) {
  using telemetry::Counter;
  const std::uint64_t rounds = get(snap, Counter::kRounds);
  if (rounds == 0) return;
  const std::uint64_t pressure = get(snap, Counter::kSolverIterations) / rounds;
  if (pressure > cfg_.solver_iters_high) {
    c.search_threads = std::min(cfg_.max_search_threads, c.search_threads * 2);
  } else if (pressure < cfg_.solver_iters_low && c.search_threads > 1) {
    c.search_threads = std::max<std::size_t>(1, c.search_threads / 2);
  }
}

}  // namespace uwp::control
