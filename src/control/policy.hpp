// The control-plane policy contract.
//
// A Policy is a *pure* function of (window index, merged counter Snapshot,
// ControlConfig) folded over a ShardControls: observe() may read only its
// arguments and the config captured at construction, and must write only
// the ShardControls it is handed. No wall-clock reads, no RNG, no
// allocation-order dependence — the determinism pin (ControlLog byte
// identity at any shard/worker/thread count, exact re-execution over a
// replayed counter plane) holds exactly as long as every policy obeys this.
#pragma once

#include <cstddef>
#include <cstdint>

#include "control/actions.hpp"
#include "telemetry/collector.hpp"

namespace uwp::control {

// Engine + policy tuning knobs, spec-derived (config::make_control_config).
struct ControlConfig {
  bool enabled = false;
  // Per-policy enables: the three built-ins can be gated independently.
  bool arena = true;
  bool shaper = true;
  bool solver = true;
  // Decision cadence in telemetry windows of virtual time. The fleet driver
  // uses this directly as ticks-per-window; serve mode scales by
  // tick_period_s exactly like the telemetry factory does.
  std::size_t window_ticks = 16;
  // ArenaTunerPolicy: evictions per window that count as a storm (raises
  // free-list retention), and the retention band it moves within.
  std::uint64_t evict_storm = 8;
  std::size_t retain_base = 4;
  std::size_t retain_max = 64;
  // ShaperTunerPolicy: multiplicative rate step per congested window, and
  // the ceiling as a multiple of the spec's baseline rate.
  double rate_step = 1.25;
  double rate_max_multiplier = 4.0;
  // SolverTunerPolicy: SMACOF iterations per round above which the pruned
  // outlier search fans out, and below which it folds back in.
  std::uint64_t solver_iters_high = 400;
  std::uint64_t solver_iters_low = 64;
  std::size_t max_search_threads = 8;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual const char* name() const = 0;
  // Fold one window's merged counter snapshot into the knob bundle. Called
  // at every window boundary, in fixed policy order, single-threaded.
  virtual void observe(std::uint64_t window, const telemetry::Snapshot& snap,
                       ShardControls& controls) = 0;
};

}  // namespace uwp::control
