// The three built-in control policies.
//
// Each one reads only deterministic counters from the merged window
// Snapshot and nudges one knob group in ShardControls. They hold no mutable
// state of their own — everything they adapt lives in the ShardControls
// fold, so re-executing them over the same snapshot sequence reproduces the
// same decisions bit-for-bit (the ControlLog contract).
#pragma once

#include "control/policy.hpp"

namespace uwp::control {

// Arena tuner: free-list retention + cache policy from churn signals.
//   * evict storm (kEvicts >= evict_storm per window) — double retention
//     toward retain_max so evicted pipelines stay warm for readmissions.
//   * churn with a drifting group-size mix (mean admitted size diverges
//     from mean evicted size) — switch to kCostAware, which serves
//     near-size entries at a rebind cost instead of building cold.
//   * churn with a stable mix — kLfu keeps the most-reused pipelines.
//   * idle window — decay retention halfway back toward retain_base.
class ArenaTunerPolicy final : public Policy {
 public:
  explicit ArenaTunerPolicy(const ControlConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "arena_tuner"; }
  void observe(std::uint64_t window, const telemetry::Snapshot& snap,
               ShardControls& controls) override;

 private:
  ControlConfig cfg_;
};

// Shaper tuner: token-bucket rate/burst/defer budget from shed pressure.
// Raises the admission rate multiplicatively while frames shed *and* the
// workers kept pace with what was admitted (rounds >= admitted — shedding
// was the bottleneck, not the solvers); decays back toward the spec
// baseline on quiet windows. The defer budget rises with shed pressure so
// bursts spread into the retry heap instead of coasting.
class ShaperTunerPolicy final : public Policy {
 public:
  ShaperTunerPolicy(const ControlConfig& cfg, const ShardControls& baseline)
      : cfg_(cfg), base_(baseline) {}
  const char* name() const override { return "shaper_tuner"; }
  void observe(std::uint64_t window, const telemetry::Snapshot& snap,
               ShardControls& controls) override;

 private:
  ControlConfig cfg_;
  ShardControls base_;
};

// Solver tuner: OutlierOptions::search_threads from SMACOF iteration
// pressure (iterations per executed round). Doubles the pruned-search
// fan-out above solver_iters_high, folds back toward 1 below
// solver_iters_low. Result-neutral: the parallel pruned search is
// bit-identical at any thread count.
class SolverTunerPolicy final : public Policy {
 public:
  explicit SolverTunerPolicy(const ControlConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "solver_tuner"; }
  void observe(std::uint64_t window, const telemetry::Snapshot& snap,
               ShardControls& controls) override;

 private:
  ControlConfig cfg_;
};

}  // namespace uwp::control
