// ControlEngine: the deterministic fold from counter snapshots to actions.
//
// The engine owns the active ShardControls, the policy chain, and the
// ControlLog. At every window boundary the driver (fleet service or ingest
// server) hands it the merged counter Snapshot for the window that just
// closed; the engine masks its own control counters out (so offline
// re-execution sees identical inputs), folds the policies in fixed order,
// diffs the resulting knob bundle against the active one, and appends one
// ControlAction per changed field. The whole fold is
//
//   log = f(config, baseline, snapshots[0..n])
//
// — no wall clock, no RNG, no thread-count dependence — which is what makes
// the log byte-identical across shard/worker/thread counts and exactly
// re-derivable from a replayed counter plane (reexecute()).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/actions.hpp"
#include "control/log.hpp"
#include "control/policy.hpp"

namespace uwp::control {

class ControlEngine {
 public:
  ControlEngine(const ControlConfig& cfg, const ShardControls& baseline);

  // Attach the engine's own telemetry stream (it emits kControlWindows /
  // kControlActions there). `window_span` is the telemetry window length in
  // the driver's virtual-time unit — ticks for the fleet, seconds for the
  // server — used to stamp emissions into the window *after* the one
  // observed (decisions apply going forward).
  void bind_stream(telemetry::ShardStream* stream, double window_span);

  // Fold one closed window. Windows must be presented in increasing order;
  // `snap` is the merged Snapshot for exactly that window.
  void observe_window(std::uint64_t window, telemetry::Snapshot snap);

  const ShardControls& controls() const { return controls_; }
  const ControlLog& log() const { return log_; }
  const ControlConfig& config() const { return cfg_; }

  // Re-run the fold over a snapshot sequence (e.g. the counter plane a
  // Replayer rebuilt) and return the log it produces. Equals the live log
  // whenever the snapshots match the live run's — the record→replay pin.
  static ControlLog reexecute(const ControlConfig& cfg,
                              const ShardControls& baseline,
                              const std::vector<telemetry::Snapshot>& snaps);

 private:
  ControlConfig cfg_;
  ShardControls controls_;
  std::vector<std::unique_ptr<Policy>> policies_;
  ControlLog log_;
  telemetry::ShardStream* stream_ = nullptr;
  double window_span_ = 0.0;
};

}  // namespace uwp::control
