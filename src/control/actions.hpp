// Typed control-plane actions and the per-shard knob bundle they drive.
//
// The control plane closes the loop between the deterministic telemetry
// counter plane and the fleet's tunable knobs. Everything in this header is
// plain data: a ControlAction records one knob change decided at one window
// boundary, and ShardControls is the full knob bundle a shard (or server
// worker) applies between boundaries. Policies never touch the fleet
// directly — they edit a ShardControls and the engine diffs it into actions.
#pragma once

#include <cstddef>
#include <cstdint>

namespace uwp::control {

// Warm-pipeline cache replacement policy for fleet::ShardArena's free lists.
//   kLru       — exact-size match, most recently released first (the arena's
//                historical behavior; the control-off default).
//   kLfu       — exact-size match, most-reused entry first (keeps the
//                hottest pipelines warm under churn).
//   kCostAware — exact-size first, else the nearest larger entry within a
//                small size window (pays a rebind instead of a cold build
//                when the workload's group-size mix drifts).
enum class CachePolicy : std::uint8_t {
  kLru = 0,
  kLfu,
  kCostAware,
  kCount_,
};
const char* to_string(CachePolicy p);

// One knob per action kind; `value` is the new setting (integral knobs are
// stored as exact small doubles, so the encoding round-trips bit-exactly).
enum class ActionKind : std::uint8_t {
  kArenaCachePolicy = 0,  // value = CachePolicy enum value
  kArenaRetain,           // value = retained free entries per size (0 = all)
  kShaperRate,            // value = token-bucket rate, rounds/sec (0 = off)
  kShaperBurst,           // value = token-bucket burst, rounds
  kShaperMaxDefers,       // value = defer budget before a frame sheds
  kSearchThreads,         // value = OutlierOptions::search_threads
  kCount_,
};
inline constexpr std::size_t kActionKindCount =
    static_cast<std::size_t>(ActionKind::kCount_);
const char* to_string(ActionKind k);

// One decided knob change: at the boundary closing `window`, set `kind` to
// `value`. A ControlLog is a flat sequence of these.
struct ControlAction {
  std::uint64_t window = 0;
  ActionKind kind = ActionKind::kArenaCachePolicy;
  double value = 0.0;
};

bool bit_equal(const ControlAction& a, const ControlAction& b);

// The full knob bundle. Defaults reproduce the uncontrolled fleet exactly;
// the engine seeds this from the spec-derived baseline and policies nudge
// it at window boundaries.
struct ShardControls {
  CachePolicy cache_policy = CachePolicy::kLru;
  std::size_t arena_retain = 0;  // free entries kept per group size; 0 = all
  double shaper_rate = 0.0;      // rounds/sec admitted; 0 disables the bucket
  double shaper_burst = 8.0;     // bucket depth in rounds
  std::size_t shaper_max_defers = 8;
  std::size_t search_threads = 1;
};

bool bit_equal(const ShardControls& a, const ShardControls& b);

}  // namespace uwp::control
