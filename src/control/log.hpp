// ControlLog: the flat, replayable record of every control decision.
//
// The log is the control plane's determinism artifact, playing the role the
// fleet trace plays for session rounds: a run's log must be byte-identical
// at any shard/worker/thread count, and re-executing the policies over the
// replayed counter plane must reproduce it exactly (see
// ControlEngine::reexecute). The binary codec is versioned and
// little-endian; `control_log_digest` gives a cheap fingerprint for CI
// diffs and the uwp_run metrics JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "control/actions.hpp"

namespace uwp::control {

inline constexpr std::uint32_t kControlLogMagic = 0x4C435755u;  // "UWCL"
inline constexpr std::uint16_t kControlLogVersion = 1;

struct ControlLog {
  std::vector<ControlAction> actions;
  // Windows the engine observed (actions reference a subset of these).
  std::uint64_t windows_observed = 0;
};

bool bit_equal(const ControlLog& a, const ControlLog& b);

// FNV-1a over the log's canonical byte encoding (action fields in order,
// doubles by bit pattern). Stable across platforms.
std::uint64_t control_log_digest(const ControlLog& log);

// Binary codec. write never fails silently; read throws std::runtime_error
// on bad magic/version or a truncated stream.
void write_control_log(std::ostream& out, const ControlLog& log);
ControlLog read_control_log(std::istream& in);

}  // namespace uwp::control
