#include "control/log.hpp"

#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>

namespace uwp::control {
namespace {

// Local little-endian primitives. fleet/wire.hpp has equivalents, but the
// control layer sits *below* the fleet in the dependency order, so it keeps
// its own (the formats are independent anyway — different magic/version).
constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t dbits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct Reader {
  const std::vector<std::uint8_t>& in;
  std::size_t pos = 0;

  void need(std::size_t bytes) const {
    if (pos + bytes > in.size())
      throw std::runtime_error("control log: truncated input");
  }
  std::uint8_t u8() {
    need(1);
    return in[pos++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(v | (std::uint16_t(in[pos + i]) << (8 * i)));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
};

}  // namespace

bool bit_equal(const ControlLog& a, const ControlLog& b) {
  if (a.windows_observed != b.windows_observed) return false;
  if (a.actions.size() != b.actions.size()) return false;
  for (std::size_t i = 0; i < a.actions.size(); ++i)
    if (!bit_equal(a.actions[i], b.actions[i])) return false;
  return true;
}

std::uint64_t control_log_digest(const ControlLog& log) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv_u64(h, log.windows_observed);
  h = fnv_u64(h, log.actions.size());
  for (const ControlAction& a : log.actions) {
    h = fnv_u64(h, a.window);
    h = fnv_u64(h, static_cast<std::uint64_t>(a.kind));
    h = fnv_u64(h, dbits(a.value));
  }
  return h;
}

void write_control_log(std::ostream& out, const ControlLog& log) {
  std::vector<std::uint8_t> buf;
  put_u32(buf, kControlLogMagic);
  put_u16(buf, kControlLogVersion);
  put_u64(buf, log.windows_observed);
  put_u64(buf, log.actions.size());
  for (const ControlAction& a : log.actions) {
    put_u64(buf, a.window);
    buf.push_back(static_cast<std::uint8_t>(a.kind));
    put_u64(buf, dbits(a.value));
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error("control log: write failed");
}

ControlLog read_control_log(std::istream& in) {
  std::vector<std::uint8_t> buf{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
  Reader r{buf, 0};
  if (r.u32() != kControlLogMagic)
    throw std::runtime_error("control log: bad magic");
  if (r.u16() != kControlLogVersion)
    throw std::runtime_error("control log: unsupported version");
  ControlLog log;
  log.windows_observed = r.u64();
  const std::uint64_t n = r.u64();
  log.actions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ControlAction a;
    a.window = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind >= kActionKindCount)
      throw std::runtime_error("control log: unknown action kind");
    a.kind = static_cast<ActionKind>(kind);
    const std::uint64_t bits = r.u64();
    std::memcpy(&a.value, &bits, sizeof(a.value));
    log.actions.push_back(a);
  }
  if (r.pos != buf.size())
    throw std::runtime_error("control log: trailing bytes");
  return log;
}

}  // namespace uwp::control
