#include "control/engine.hpp"

#include <cstring>

#include "control/policies.hpp"

namespace uwp::control {
namespace {

bool dbits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace

ControlEngine::ControlEngine(const ControlConfig& cfg,
                             const ShardControls& baseline)
    : cfg_(cfg), controls_(baseline) {
  // Fixed construction order == fixed fold order; part of the determinism
  // contract (policies compose through the shared ShardControls).
  if (cfg_.arena) policies_.push_back(std::make_unique<ArenaTunerPolicy>(cfg_));
  if (cfg_.shaper)
    policies_.push_back(std::make_unique<ShaperTunerPolicy>(cfg_, baseline));
  if (cfg_.solver)
    policies_.push_back(std::make_unique<SolverTunerPolicy>(cfg_));
}

void ControlEngine::bind_stream(telemetry::ShardStream* stream,
                                double window_span) {
  stream_ = stream;
  window_span_ = window_span;
}

void ControlEngine::observe_window(std::uint64_t window,
                                   telemetry::Snapshot snap) {
  using telemetry::Counter;
  // Mask the engine's own counters: a replayed counter plane has no live
  // engine stream, and re-execution must see byte-identical inputs.
  snap.counts[static_cast<std::size_t>(Counter::kControlWindows)] = 0;
  snap.counts[static_cast<std::size_t>(Counter::kControlActions)] = 0;

  ShardControls next = controls_;
  for (const std::unique_ptr<Policy>& p : policies_)
    p->observe(window, snap, next);

  std::uint64_t emitted = 0;
  const auto emit = [&](ActionKind kind, double value) {
    log_.actions.push_back(ControlAction{window, kind, value});
    ++emitted;
  };
  if (next.cache_policy != controls_.cache_policy)
    emit(ActionKind::kArenaCachePolicy,
         static_cast<double>(static_cast<std::uint8_t>(next.cache_policy)));
  if (next.arena_retain != controls_.arena_retain)
    emit(ActionKind::kArenaRetain, static_cast<double>(next.arena_retain));
  if (!dbits_equal(next.shaper_rate, controls_.shaper_rate))
    emit(ActionKind::kShaperRate, next.shaper_rate);
  if (!dbits_equal(next.shaper_burst, controls_.shaper_burst))
    emit(ActionKind::kShaperBurst, next.shaper_burst);
  if (next.shaper_max_defers != controls_.shaper_max_defers)
    emit(ActionKind::kShaperMaxDefers,
         static_cast<double>(next.shaper_max_defers));
  if (next.search_threads != controls_.search_threads)
    emit(ActionKind::kSearchThreads, static_cast<double>(next.search_threads));

  controls_ = next;
  ++log_.windows_observed;

  if (stream_ != nullptr) {
    // Decisions take effect in the *next* window; stamp the emissions there
    // so the observed window's sums stay final.
    stream_->set_time(static_cast<double>(window + 1) * window_span_);
    stream_->count(Counter::kControlWindows, 1);
    if (emitted > 0) stream_->count(Counter::kControlActions, emitted);
  }
}

ControlLog ControlEngine::reexecute(
    const ControlConfig& cfg, const ShardControls& baseline,
    const std::vector<telemetry::Snapshot>& snaps) {
  ControlEngine engine(cfg, baseline);
  for (const telemetry::Snapshot& snap : snaps)
    engine.observe_window(snap.window, snap);
  return engine.log_;
}

}  // namespace uwp::control
