#include "sim/trace.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace uwp::sim {

namespace {

constexpr char kMagic[4] = {'U', 'W', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace: truncated input");
  return value;
}

void write_samples(std::ostream& out, const std::vector<double>& xs) {
  write_pod<std::uint64_t>(out, xs.size());
  out.write(reinterpret_cast<const char*>(xs.data()),
            static_cast<std::streamsize>(xs.size() * sizeof(double)));
}

std::vector<double> read_samples(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > (1ull << 32))
    throw std::runtime_error("trace: implausible sample count");
  std::vector<double> xs(n);
  in.read(reinterpret_cast<char*>(xs.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw std::runtime_error("trace: truncated samples");
  return xs;
}

}  // namespace

void write_trace(std::ostream& out, const ReceptionTrace& trace) {
  out.write(kMagic, 4);
  write_pod<std::uint32_t>(out, kVersion);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(trace.receptions.size()));
  for (const channel::Reception& rec : trace.receptions) {
    write_pod<double>(out, rec.fs_hz);
    write_pod<double>(out, rec.true_range_m);
    write_pod<double>(out, rec.true_tof_s[0]);
    write_pod<double>(out, rec.true_tof_s[1]);
    write_samples(out, rec.mic[0]);
    write_samples(out, rec.mic[1]);
  }
  if (!out) throw std::runtime_error("trace: write failed");
}

ReceptionTrace read_trace(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("trace: bad magic");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) throw std::runtime_error("trace: unsupported version");
  const auto count = read_pod<std::uint32_t>(in);

  ReceptionTrace trace;
  trace.receptions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    channel::Reception rec;
    rec.fs_hz = read_pod<double>(in);
    rec.true_range_m = read_pod<double>(in);
    rec.true_tof_s[0] = read_pod<double>(in);
    rec.true_tof_s[1] = read_pod<double>(in);
    rec.mic[0] = read_samples(in);
    rec.mic[1] = read_samples(in);
    trace.receptions.push_back(std::move(rec));
  }
  return trace;
}

void save_trace(const std::string& path, const ReceptionTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_trace(out, trace);
}

ReceptionTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_trace(in);
}

ReceptionTrace record_link_trace(const channel::LinkSimulator& link,
                                 const channel::LinkConfig& cfg,
                                 std::span<const double> waveform, int count,
                                 uwp::Rng& rng) {
  ReceptionTrace trace;
  trace.receptions.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) trace.add(link.transmit(waveform, cfg, rng));
  return trace;
}

const char* to_string(PacketEventKind kind) {
  switch (kind) {
    case PacketEventKind::kTxStart: return "tx_start";
    case PacketEventKind::kRxDeliver: return "rx_deliver";
    case PacketEventKind::kRxCollision: return "rx_collision";
    case PacketEventKind::kRxHalfDuplexDrop: return "rx_half_duplex_drop";
    case PacketEventKind::kRxDetectFail: return "rx_detect_fail";
  }
  return "unknown";
}

void write_packet_trace_csv(std::ostream& out, const PacketTrace& trace) {
  out << "time_s,round,tx,rx,event,collision\n";
  char buf[32];
  for (const PacketEvent& e : trace.events) {
    std::snprintf(buf, sizeof buf, "%.9f", e.time_s);
    out << buf << ',' << e.round << ',' << e.tx << ',' << e.rx << ','
        << to_string(e.kind) << ',' << (e.collision ? 1 : 0) << '\n';
  }
  if (!out) throw std::runtime_error("trace: packet CSV write failed");
}

void save_packet_trace_csv(const std::string& path, const PacketTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_packet_trace_csv(out, trace);
}

}  // namespace uwp::sim
