// Reception trace recording and replay. The evaluation hinges on feeding the
// receiver pipeline recorded microphone streams — whether they came from this
// simulator or from a real deployment's WAV captures. Traces serialize dual-
// mic receptions plus ground truth to a simple self-describing binary format
// so experiments are repeatable and real recordings can be dropped in.
//
// Format (little-endian):
//   magic "UWPT" | u32 version | u32 reception_count
//   per reception:
//     f64 fs_hz | f64 true_range_m | f64 tof_mic1 | f64 tof_mic2
//     u64 len1 | f64[len1] mic1 | u64 len2 | f64[len2] mic2
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "channel/propagation.hpp"

namespace uwp::sim {

struct ReceptionTrace {
  std::vector<channel::Reception> receptions;

  std::size_t size() const { return receptions.size(); }
  void add(channel::Reception rec) { receptions.push_back(std::move(rec)); }
};

// Stream serialization (tested against round trips; throws std::runtime_error
// on malformed input).
void write_trace(std::ostream& out, const ReceptionTrace& trace);
ReceptionTrace read_trace(std::istream& in);

// File convenience wrappers.
void save_trace(const std::string& path, const ReceptionTrace& trace);
ReceptionTrace load_trace(const std::string& path);

// Record `count` preamble receptions over one simulated link into a trace
// (the "synthetic capture" used by the repro when no lake is available).
ReceptionTrace record_link_trace(const channel::LinkSimulator& link,
                                 const channel::LinkConfig& cfg,
                                 std::span<const double> waveform, int count,
                                 uwp::Rng& rng);

// ---------------------------------------------------------------------------
// Packet-level event trace for the discrete-event simulator (des/). One row
// per medium event, written as CSV so DES scenarios are debuggable with
// nothing fancier than grep/awk/a spreadsheet.

enum class PacketEventKind {
  kTxStart,          // node began transmitting (rx column repeats tx)
  kRxDeliver,        // clean reception handed to the protocol state machine
  kRxCollision,      // reception overlapped another transmission at this rx
  kRxHalfDuplexDrop, // rx was transmitting itself while the packet arrived
  kRxDetectFail,     // clean reception, but preamble detection failed
};

const char* to_string(PacketEventKind kind);

struct PacketEvent {
  double time_s = 0.0;    // simulated time the event fired
  std::size_t round = 0;  // protocol round tag (set via PacketTrace::round)
  std::size_t tx = 0;
  std::size_t rx = 0;
  PacketEventKind kind = PacketEventKind::kTxStart;
  bool collision = false;
};

struct PacketTrace {
  std::vector<PacketEvent> events;
  std::size_t round = 0;  // tag stamped onto subsequently added events

  std::size_t size() const { return events.size(); }
  void add(double time_s, std::size_t tx, std::size_t rx, PacketEventKind kind,
           bool collision) {
    events.push_back({time_s, round, tx, rx, kind, collision});
  }
};

// CSV with header "time_s,round,tx,rx,event,collision".
void write_packet_trace_csv(std::ostream& out, const PacketTrace& trace);
void save_packet_trace_csv(const std::string& path, const PacketTrace& trace);

}  // namespace uwp::sim
