// ScenarioRunner: the only place acoustics and geometry meet. It samples
// waveform-level preamble exchanges over the channel simulator (per-link
// arrival errors and leader-side dual-mic votes) and exposes two
// pipeline::MeasurementModel front-ends — waveform PHY and calibrated
// fast-Gaussian — whose rounds flow through the shared
// pipeline::RoundPipeline (quantize -> ranging solve -> localize ->
// metrics). run_round is the one-call convenience wrapper; sweeps that run
// many rounds keep a ScenarioRoundContext per thread so the pipeline
// workspaces stay warm.
#pragma once

#include <memory>
#include <optional>

#include "core/localizer.hpp"
#include "phy/ranging.hpp"
#include "pipeline/arrival_error.hpp"
#include "pipeline/closed_form.hpp"
#include "pipeline/round_pipeline.hpp"
#include "proto/ranging_solver.hpp"
#include "proto/timestamp_protocol.hpp"
#include "sensors/depth_sensor_model.hpp"
#include "sensors/pointing_model.hpp"
#include "sim/deployment.hpp"

namespace uwp::sim {

struct RoundOptions {
  // Use waveform-level PHY simulation for each link's arrival error; when
  // false, draw errors from the calibrated fast-Gaussian ArrivalErrorModel
  // instead (fast mode for large sweeps).
  bool waveform_phy = true;
  pipeline::ArrivalErrorModel fast_arrival{};

  // Apply the §2.4 payload quantization (2-sample resolution) to the
  // reported timestamps before solving.
  bool quantize_payload = true;

  // Sound-speed misconfiguration: the receiver computes distances with a
  // configured speed (Wilson's equation with guessed temperature/salinity)
  // that differs from the water's true speed. The paper attributes up to 2%
  // error to this (§2); it makes ranging error grow with distance.
  double sound_speed_error_mps = 22.0;

  sensors::DepthSensorModel depth_sensor =
      sensors::DepthSensorModel::phone_pressure_in_pouch();
  sensors::PointingModel pointing{};
  core::LocalizerOptions localizer{};

  phy::MicMode mic_mode = phy::MicMode::kDual;
};

struct RoundResult {
  bool ok = false;  // localization produced positions for all devices
  proto::ProtocolRun protocol;
  proto::RangingSolution ranging;
  core::LocalizationResult localization;
  // Ground truth in the leader-origin frame used for evaluation.
  std::vector<uwp::Vec2> truth_xy;
  std::vector<double> truth_depths;
  // Per-device horizontal localization error (meters); entry 0 (leader) = 0.
  std::vector<double> error_2d;
  // Per-link measured-vs-true 1D distance errors for diagnostics.
  std::vector<double> ranging_errors;
  // The exact localization input used (distances, weights, depths, pointing,
  // votes) so ablations can re-localize the same measurements.
  core::LocalizationInput localizer_input;
};

class ScenarioRunner;

// The waveform-level PHY front-end: per-link arrival errors and leader
// votes come from full acoustic channel simulation via a ScenarioRunner
// (which must outlive the model).
class WaveformMeasurementModel final : public pipeline::ClosedFormModel {
 public:
  WaveformMeasurementModel(const ScenarioRunner& runner, const RoundOptions& opts);

 protected:
  double arrival_error_s(std::size_t to, std::size_t from, uwp::Rng& rng) override;
  int vote_sign(std::size_t node, double measured_bearing_rad,
                const pipeline::RoundMeasurement& m, uwp::Rng& rng) override;

 private:
  const ScenarioRunner& runner_;
  phy::MicMode mic_mode_;
};

// Reusable round context: the measurement model (waveform or fast per the
// options) plus a RoundPipeline with warm workspaces. One per thread; run
// many rounds through it without re-allocating solver scratch.
class ScenarioRoundContext {
 public:
  ScenarioRoundContext(const ScenarioRunner& runner, const RoundOptions& opts);

  // One full round into `out` (buffers reused across calls).
  void run_into(RoundResult& out, uwp::Rng& rng);
  RoundResult run(uwp::Rng& rng);

  pipeline::RoundPipeline& pipeline() { return pipe_; }
  pipeline::ClosedFormModel& model() { return *model_; }

 private:
  std::unique_ptr<pipeline::ClosedFormModel> model_;
  pipeline::RoundPipeline pipe_;
  pipeline::RoundMeasurement meas_;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Deployment deployment);

  const Deployment& deployment() const { return dep_; }
  Deployment& deployment() { return dep_; }

  // The deployment as a pipeline scene (geometry, connectivity, audio,
  // protocol at the water's true sound speed, sensors from `opts`).
  pipeline::ClosedFormScene scene(const RoundOptions& opts) const;

  // One-way waveform-level arrival-error sample (seconds) for a transmission
  // from device `from` received at device `to`. nullopt = detection failure.
  std::optional<double> sample_arrival_error(std::size_t from, std::size_t to,
                                             uwp::Rng& rng,
                                             phy::MicMode mode = phy::MicMode::kDual) const;

  // Waveform-level dual-mic vote sign at the leader for a transmission from
  // device `from` (for flip disambiguation). 0 when uninformative.
  int sample_leader_vote(std::size_t from, double pointing_bearing_rad,
                         uwp::Rng& rng) const;

  // Full protocol + localization round (one-shot convenience wrapper over a
  // fresh ScenarioRoundContext). Thread-safe for concurrent calls with
  // distinct Rngs.
  RoundResult run_round(const RoundOptions& opts, uwp::Rng& rng) const;

 private:
  Deployment dep_;
  phy::OfdmPreamble preamble_;
  phy::PreambleRanger ranger_;
};

}  // namespace uwp::sim
