// ScenarioRunner: the only place acoustics and geometry meet. Runs
// waveform-level preamble exchanges over the channel simulator to sample
// per-link arrival errors and leader-side dual-mic votes, drives the
// distributed timestamp protocol with those errors, solves for pairwise
// distances, and feeds the localization core — the complete system of the
// paper, end to end.
#pragma once

#include <optional>

#include "core/localizer.hpp"
#include "phy/ranging.hpp"
#include "proto/ranging_solver.hpp"
#include "proto/timestamp_protocol.hpp"
#include "sensors/depth_sensor_model.hpp"
#include "sensors/pointing_model.hpp"
#include "sim/deployment.hpp"

namespace uwp::sim {

struct RoundOptions {
  // Use waveform-level PHY simulation for each link's arrival error; when
  // false, draw errors from a calibrated Gaussian instead (fast mode for
  // large sweeps). Fast-mode sigma grows with range.
  bool waveform_phy = true;
  double fast_error_sigma_m = 0.30;
  double fast_error_sigma_per_m = 0.008;
  double fast_detection_failure_prob = 0.01;

  // Apply the §2.4 payload quantization (2-sample resolution) to the
  // reported timestamps before solving.
  bool quantize_payload = true;

  // Sound-speed misconfiguration: the receiver computes distances with a
  // configured speed (Wilson's equation with guessed temperature/salinity)
  // that differs from the water's true speed. The paper attributes up to 2%
  // error to this (§2); it makes ranging error grow with distance.
  double sound_speed_error_mps = 22.0;

  sensors::DepthSensorModel depth_sensor =
      sensors::DepthSensorModel::phone_pressure_in_pouch();
  sensors::PointingModel pointing{};
  core::LocalizerOptions localizer{};

  phy::MicMode mic_mode = phy::MicMode::kDual;
};

struct RoundResult {
  bool ok = false;  // localization produced positions for all devices
  proto::ProtocolRun protocol;
  proto::RangingSolution ranging;
  core::LocalizationResult localization;
  // Ground truth in the leader-origin frame used for evaluation.
  std::vector<uwp::Vec2> truth_xy;
  std::vector<double> truth_depths;
  // Per-device horizontal localization error (meters); entry 0 (leader) = 0.
  std::vector<double> error_2d;
  // Per-link measured-vs-true 1D distance errors for diagnostics.
  std::vector<double> ranging_errors;
  // The exact localization input used (distances, weights, depths, pointing,
  // votes) so ablations can re-localize the same measurements.
  core::LocalizationInput localizer_input;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Deployment deployment);

  const Deployment& deployment() const { return dep_; }
  Deployment& deployment() { return dep_; }

  // One-way waveform-level arrival-error sample (seconds) for a transmission
  // from device `from` received at device `to`. nullopt = detection failure.
  std::optional<double> sample_arrival_error(std::size_t from, std::size_t to,
                                             uwp::Rng& rng,
                                             phy::MicMode mode = phy::MicMode::kDual) const;

  // Waveform-level dual-mic vote sign at the leader for a transmission from
  // device `from` (for flip disambiguation). 0 when uninformative.
  int sample_leader_vote(std::size_t from, double pointing_bearing_rad,
                         uwp::Rng& rng) const;

  // Full protocol + localization round.
  RoundResult run_round(const RoundOptions& opts, uwp::Rng& rng) const;

 private:
  Deployment dep_;
  phy::OfdmPreamble preamble_;
  phy::PreambleRanger ranger_;
};

}  // namespace uwp::sim
