#include "sim/fleet_workload.hpp"

#include <cmath>
#include <stdexcept>

#include "proto/slot_schedule.hpp"
#include "sim/deployment.hpp"
#include "sim/sweep.hpp"
#include "util/geometry.hpp"

namespace uwp::sim {

const char* to_string(GroupScenarioKind kind) {
  switch (kind) {
    case GroupScenarioKind::kStatic: return "static";
    case GroupScenarioKind::kLawnmower: return "lawnmower";
    case GroupScenarioKind::kWaypoint: return "waypoint";
    case GroupScenarioKind::kDropoutChurn: return "dropout-churn";
    case GroupScenarioKind::kPacketDes: return "packet-des";
  }
  return "?";
}

namespace {

// Serving mix (percent thresholds): mostly cheap closed-form groups with a
// thin slice of full packet-level DES sessions keeping the expensive path
// honest under fleet load.
GroupScenarioKind draw_kind(uwp::Rng& rng, bool include_des) {
  const std::int64_t d = rng.uniform_int(0, 99);
  if (d < 35) return GroupScenarioKind::kStatic;
  if (d < 60) return GroupScenarioKind::kLawnmower;
  if (d < 82) return GroupScenarioKind::kWaypoint;
  if (d < 95) return GroupScenarioKind::kDropoutChurn;
  return include_des ? GroupScenarioKind::kPacketDes : GroupScenarioKind::kStatic;
}

void add_lawnmower_motion(GroupScenario& sc, uwp::Rng& rng) {
  const std::size_t n = sc.scene.positions.size();
  sc.motion.assign(n, {});
  for (std::size_t i = 1; i < n; ++i) {
    if (!rng.bernoulli(0.5)) continue;
    GroupMotion& m = sc.motion[i];
    const double ang = rng.uniform(-kPi, kPi);
    m.axis = {std::cos(ang), std::sin(ang), 0.0};
    m.span_m = rng.uniform(4.0, 10.0);
    m.speed_mps = rng.uniform(0.2, 0.5);
    m.phase_s = rng.uniform(0.0, 2.0 * m.span_m / m.speed_mps);
  }
}

void add_waypoint_motion(GroupScenario& sc, uwp::Rng& rng) {
  const std::size_t n = sc.scene.positions.size();
  sc.motion.assign(n, {});
  for (std::size_t i = 1; i < n; ++i) {
    if (!rng.bernoulli(0.5)) continue;
    GroupMotion& m = sc.motion[i];
    const Vec3 origin = sc.scene.positions[i];
    const std::size_t points = static_cast<std::size_t>(rng.uniform_int(2, 3));
    m.waypoints.push_back(origin);
    for (std::size_t p = 1; p < points; ++p)
      m.waypoints.push_back({origin.x + rng.uniform(-5.0, 5.0),
                             origin.y + rng.uniform(-5.0, 5.0), origin.z});
    m.speed_mps = rng.uniform(0.2, 0.5);
  }
}

}  // namespace

GroupScenario make_group_scenario(const WorkloadParams& params, std::uint64_t session_id) {
  if (params.min_group_size < 4 || params.max_group_size < params.min_group_size)
    throw std::invalid_argument("fleet workload: bad group size range");
  if (params.min_rounds < 1 || params.max_rounds < params.min_rounds)
    throw std::invalid_argument("fleet workload: bad rounds range");
  if (params.force_kind > static_cast<int>(GroupScenarioKind::kPacketDes))
    throw std::invalid_argument("fleet workload: force_kind out of range");

  // Same per-session stream discipline as SweepRunner trials: the scenario
  // depends only on (seed, session_id), never on generation order.
  uwp::Rng rng(trial_seed(params.seed, session_id));

  GroupScenario sc;
  sc.session_id = session_id;
  sc.kind = draw_kind(rng, params.include_des);
  if (params.force_kind >= 0) sc.kind = static_cast<GroupScenarioKind>(params.force_kind);

  const std::size_t n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.min_group_size),
                      static_cast<std::int64_t>(params.max_group_size)));
  sc.scene.positions = random_analytical_topology(n, rng).positions;
  sc.scene.connectivity = Matrix(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) sc.scene.connectivity(i, i) = 0.0;
  sc.scene.audio.resize(n);
  for (std::size_t i = 0; i < n; ++i) sc.scene.audio[i] = random_audio_timing(rng);
  sc.scene.protocol.num_devices = n;

  sc.arrival.detection_failure_prob = rng.uniform(0.005, 0.03);

  switch (sc.kind) {
    case GroupScenarioKind::kStatic:
      break;
    case GroupScenarioKind::kLawnmower:
      add_lawnmower_motion(sc, rng);
      break;
    case GroupScenarioKind::kWaypoint:
      add_waypoint_motion(sc, rng);
      break;
    case GroupScenarioKind::kDropoutChurn:
      sc.dropout_prob = rng.uniform(0.15, 0.35);
      break;
    case GroupScenarioKind::kPacketDes:
      // The DES slice reuses the lawnmower tracks (nodes move *during*
      // rounds there) and needs a period long enough for the whole slot
      // schedule, worst-case relay chain included.
      add_lawnmower_motion(sc, rng);
      break;
  }

  sc.admit_tick = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(params.admit_spread_ticks)));
  sc.lifetime_rounds = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.min_rounds),
                      static_cast<std::int64_t>(params.max_rounds)));
  if (sc.kind == GroupScenarioKind::kPacketDes)
    sc.round_period_s = proto::round_trip_worst_case(sc.scene.protocol) +
                        2.0 * sc.scene.protocol.t_packet_s + 1.0;
  return sc;
}

std::vector<GroupScenario> make_workload(const WorkloadParams& params) {
  std::vector<GroupScenario> out;
  out.reserve(params.sessions);
  for (std::uint64_t id = 0; id < params.sessions; ++id)
    out.push_back(make_group_scenario(params, id));
  return out;
}

}  // namespace uwp::sim
