#include "sim/scenario.hpp"

#include <cmath>
#include <limits>

#include "proto/payload_codec.hpp"

namespace uwp::sim {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

ScenarioRunner::ScenarioRunner(Deployment deployment)
    : dep_(std::move(deployment)), preamble_(dep_.preamble), ranger_(preamble_) {}

std::optional<double> ScenarioRunner::sample_arrival_error(std::size_t from,
                                                           std::size_t to,
                                                           uwp::Rng& rng,
                                                           phy::MicMode mode) const {
  const channel::LinkSimulator link(dep_.env, dep_.preamble.fs_hz);
  channel::LinkConfig cfg;
  cfg.tx_pos = dep_.devices[from].position;
  cfg.rx_pos = dep_.devices[to].position;
  cfg.occlusion_db = dep_.occlusion_db(to, from);
  cfg.rx_device = dep_.devices[to].model;
  cfg.tx_device = dep_.devices[from].model;

  const channel::Reception rec = link.transmit(preamble_.waveform(), cfg, rng);
  const std::optional<phy::RangingEstimate> est = ranger_.estimate(rec, mode);
  if (!est) return std::nullopt;
  const double true_tof = rec.true_range_m / dep_.env.sound_speed_mps();
  return est->arrival_time_s - true_tof;
}

int ScenarioRunner::sample_leader_vote(std::size_t from, double pointing_bearing_rad,
                                       uwp::Rng& rng) const {
  const channel::LinkSimulator link(dep_.env, dep_.preamble.fs_hz);
  channel::LinkConfig cfg;
  cfg.tx_pos = dep_.devices[from].position;
  cfg.rx_pos = dep_.devices[0].position;
  cfg.occlusion_db = dep_.occlusion_db(0, from);
  cfg.rx_device = dep_.devices[0].model;
  cfg.tx_device = dep_.devices[from].model;
  // Mic 2 sits to the LEFT of the pointing direction (see core::MicVote).
  const uwp::Vec2 dir{std::cos(pointing_bearing_rad), std::sin(pointing_bearing_rad)};
  cfg.mic_axis = rotate(dir, uwp::kPi / 2.0);

  const channel::Reception rec = link.transmit(preamble_.waveform(), cfg, rng);
  const std::optional<phy::RangingEstimate> est =
      ranger_.estimate(rec, phy::MicMode::kDual);
  if (!est) return 0;
  const double offset = est->mic1_tap_frac - est->mic2_tap_frac;
  if (offset > 0.0) return 1;   // mic 2 (left) heard first
  if (offset < 0.0) return -1;  // mic 1 (right) heard first
  return 0;
}

RoundResult ScenarioRunner::run_round(const RoundOptions& opts, uwp::Rng& rng) const {
  const std::size_t n = dep_.size();
  RoundResult out;

  // Ground truth in the leader-origin frame.
  out.truth_xy.resize(n);
  out.truth_depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.truth_xy[i] = (dep_.devices[i].position - dep_.devices[0].position).xy();
    out.truth_depths[i] = dep_.devices[i].position.z;
  }

  // Measured depths.
  std::vector<double> depths(n);
  for (std::size_t i = 0; i < n; ++i)
    depths[i] = opts.depth_sensor.read(out.truth_depths[i], rng);

  // Per-link arrival errors (seconds); NaN = detection failure.
  Matrix arrival_err(n, n, kNaN);
  for (std::size_t to = 0; to < n; ++to) {
    for (std::size_t from = 0; from < n; ++from) {
      if (to == from || dep_.connectivity(to, from) <= 0.0) continue;
      if (opts.waveform_phy) {
        const auto e = sample_arrival_error(from, to, rng, opts.mic_mode);
        if (e) arrival_err(to, from) = *e;
      } else {
        if (rng.bernoulli(opts.fast_detection_failure_prob)) continue;
        const double range =
            distance(dep_.devices[to].position, dep_.devices[from].position);
        const double sigma_m =
            opts.fast_error_sigma_m + opts.fast_error_sigma_per_m * range;
        // Multipath biases arrivals late more often than early.
        const double err_m = std::abs(rng.normal(0.0, sigma_m)) * 0.8 +
                             rng.normal(0.0, sigma_m * 0.3);
        arrival_err(to, from) = err_m / dep_.env.sound_speed_mps();
      }
    }
  }

  // Run the distributed timestamp protocol with those errors.
  std::vector<proto::ProtocolDevice> devices(n);
  for (std::size_t i = 0; i < n; ++i)
    devices[i] = {i, dep_.devices[i].position, dep_.devices[i].audio};
  // The protocol simulation propagates sound at the water's TRUE speed; the
  // leader-side solver converts timestamps with its CONFIGURED speed. The
  // difference is the paper's sound-speed misestimation error.
  proto::ProtocolConfig pcfg = dep_.protocol;
  pcfg.num_devices = n;
  pcfg.sound_speed_mps = dep_.env.sound_speed_mps();
  const proto::TimestampProtocol protocol(pcfg, devices);
  out.protocol = protocol.run(
      dep_.connectivity, rng,
      [&](std::size_t at, std::size_t from_id) { return arrival_err(at, from_id); });

  // Payload quantization (§2.4): timestamps ride to the leader as 10-bit
  // slot-relative deltas at 2-sample resolution.
  if (opts.quantize_payload) {
    proto::PayloadCodecConfig ccfg;
    ccfg.protocol = pcfg;
    proto::quantize_run_payload(out.protocol, ccfg);
  }

  proto::ProtocolConfig solver_cfg = pcfg;
  solver_cfg.sound_speed_mps += opts.sound_speed_error_mps;
  const proto::RangingSolver solver(solver_cfg);
  out.ranging = solver.solve(out.protocol);

  // Per-link 1D ranging diagnostics.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (out.ranging.weights(i, j) > 0.0) {
        const double true_d =
            distance(dep_.devices[i].position, dep_.devices[j].position);
        out.ranging_errors.push_back(std::abs(out.ranging.distances(i, j) - true_d));
      }

  // Leader pointing + flip votes.
  const uwp::Vec2 to_dev1 = out.truth_xy[1];
  const double true_bearing = bearing(to_dev1);
  const double measured_bearing = opts.pointing.point(true_bearing, to_dev1.norm(), rng);

  std::vector<core::MicVote> votes;
  for (std::size_t i = 2; i < n; ++i) {
    if (dep_.connectivity(0, i) <= 0.0) continue;
    int sign = 0;
    if (opts.waveform_phy) {
      sign = sample_leader_vote(i, measured_bearing, rng);
    } else {
      // Fast mode: vote reliability depends on how far the diver sits from
      // the pointing line — the mic offset shrinks to sub-sample for nearly
      // collinear divers. Average accuracy matches the paper's ~90%.
      const double side = side_of_line(out.truth_xy[i], {0, 0}, to_dev1);
      sign = side > 0 ? 1 : (side < 0 ? -1 : 0);
      const double range = out.truth_xy[i].norm();
      const double sin_angle =
          range > 0.1 ? std::abs(side) / (range * to_dev1.norm()) : 0.0;
      const double p_wrong = sin_angle < 0.17 ? 0.30 : 0.03;  // ~10 degrees
      if (rng.bernoulli(p_wrong)) sign = -sign;
    }
    if (sign != 0) votes.push_back({i, sign});
  }

  // Localize.
  core::LocalizationInput input;
  input.distances = out.ranging.distances;
  input.weights = out.ranging.weights;
  input.depths = depths;
  input.pointing_bearing_rad = measured_bearing;
  input.votes = votes;
  out.localizer_input = input;
  const core::Localizer localizer(opts.localizer);
  try {
    out.localization = localizer.localize(input, rng);
    out.ok = true;
  } catch (const std::exception&) {
    out.ok = false;
    return out;
  }

  out.error_2d.assign(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    const uwp::Vec2 est = out.localization.positions[i].xy();
    out.error_2d[i] = distance(est, out.truth_xy[i]);
  }
  return out;
}

}  // namespace uwp::sim
