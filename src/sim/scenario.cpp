#include "sim/scenario.hpp"

#include <cmath>
#include <limits>

namespace uwp::sim {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

ScenarioRunner::ScenarioRunner(Deployment deployment)
    : dep_(std::move(deployment)), preamble_(dep_.preamble), ranger_(preamble_) {}

pipeline::ClosedFormScene ScenarioRunner::scene(const RoundOptions& opts) const {
  const std::size_t n = dep_.size();
  pipeline::ClosedFormScene scene;
  scene.positions.reserve(n);
  scene.audio.reserve(n);
  for (const ScenarioDevice& dev : dep_.devices) {
    scene.positions.push_back(dev.position);
    scene.audio.push_back(dev.audio);
  }
  scene.connectivity = dep_.connectivity;
  // The protocol simulation propagates sound at the water's TRUE speed; the
  // leader-side solver converts timestamps with its CONFIGURED speed. The
  // difference is the paper's sound-speed misestimation error.
  scene.protocol = dep_.protocol;
  scene.protocol.num_devices = n;
  scene.protocol.sound_speed_mps = dep_.env.sound_speed_mps();
  scene.depth_sensor = opts.depth_sensor;
  scene.pointing = opts.pointing;
  return scene;
}

std::optional<double> ScenarioRunner::sample_arrival_error(std::size_t from,
                                                           std::size_t to,
                                                           uwp::Rng& rng,
                                                           phy::MicMode mode) const {
  const channel::LinkSimulator link(dep_.env, dep_.preamble.fs_hz);
  channel::LinkConfig cfg;
  cfg.tx_pos = dep_.devices[from].position;
  cfg.rx_pos = dep_.devices[to].position;
  cfg.occlusion_db = dep_.occlusion_db(to, from);
  cfg.rx_device = dep_.devices[to].model;
  cfg.tx_device = dep_.devices[from].model;

  const channel::Reception rec = link.transmit(preamble_.waveform(), cfg, rng);
  const std::optional<phy::RangingEstimate> est = ranger_.estimate(rec, mode);
  if (!est) return std::nullopt;
  const double true_tof = rec.true_range_m / dep_.env.sound_speed_mps();
  return est->arrival_time_s - true_tof;
}

int ScenarioRunner::sample_leader_vote(std::size_t from, double pointing_bearing_rad,
                                       uwp::Rng& rng) const {
  const channel::LinkSimulator link(dep_.env, dep_.preamble.fs_hz);
  channel::LinkConfig cfg;
  cfg.tx_pos = dep_.devices[from].position;
  cfg.rx_pos = dep_.devices[0].position;
  cfg.occlusion_db = dep_.occlusion_db(0, from);
  cfg.rx_device = dep_.devices[0].model;
  cfg.tx_device = dep_.devices[from].model;
  // Mic 2 sits to the LEFT of the pointing direction (see core::MicVote).
  const uwp::Vec2 dir{std::cos(pointing_bearing_rad), std::sin(pointing_bearing_rad)};
  cfg.mic_axis = rotate(dir, uwp::kPi / 2.0);

  const channel::Reception rec = link.transmit(preamble_.waveform(), cfg, rng);
  const std::optional<phy::RangingEstimate> est =
      ranger_.estimate(rec, phy::MicMode::kDual);
  if (!est) return 0;
  const double offset = est->mic1_tap_frac - est->mic2_tap_frac;
  if (offset > 0.0) return 1;   // mic 2 (left) heard first
  if (offset < 0.0) return -1;  // mic 1 (right) heard first
  return 0;
}

WaveformMeasurementModel::WaveformMeasurementModel(const ScenarioRunner& runner,
                                                   const RoundOptions& opts)
    : pipeline::ClosedFormModel(runner.scene(opts)),
      runner_(runner),
      mic_mode_(opts.mic_mode) {}

double WaveformMeasurementModel::arrival_error_s(std::size_t to, std::size_t from,
                                                 uwp::Rng& rng) {
  const std::optional<double> e =
      runner_.sample_arrival_error(from, to, rng, mic_mode_);
  return e ? *e : kNaN;
}

int WaveformMeasurementModel::vote_sign(std::size_t node, double measured_bearing_rad,
                                        const pipeline::RoundMeasurement& /*m*/,
                                        uwp::Rng& rng) {
  return runner_.sample_leader_vote(node, measured_bearing_rad, rng);
}

namespace {

pipeline::PipelineOptions pipeline_options(const pipeline::ClosedFormScene& scene,
                                           const RoundOptions& opts) {
  pipeline::PipelineOptions popts;
  popts.protocol = scene.protocol;
  popts.quantize_payload = opts.quantize_payload;
  popts.sound_speed_error_mps = opts.sound_speed_error_mps;
  popts.localizer = opts.localizer;
  return popts;
}

std::unique_ptr<pipeline::ClosedFormModel> make_model(const ScenarioRunner& runner,
                                                      const RoundOptions& opts) {
  if (opts.waveform_phy)
    return std::make_unique<WaveformMeasurementModel>(runner, opts);
  return std::make_unique<pipeline::FastMeasurementModel>(runner.scene(opts),
                                                          opts.fast_arrival);
}

}  // namespace

ScenarioRoundContext::ScenarioRoundContext(const ScenarioRunner& runner,
                                           const RoundOptions& opts)
    : model_(make_model(runner, opts)),
      pipe_(pipeline_options(model_->scene(), opts)) {}

void ScenarioRoundContext::run_into(RoundResult& out, uwp::Rng& rng) {
  model_->measure(meas_, rng);
  const pipeline::RoundOutput& po = pipe_.run_round(meas_, rng);

  out.protocol = meas_.protocol;  // post-quantization: what the leader saw
  out.ranging = po.ranging;
  out.localization = po.localization;
  out.truth_xy = meas_.truth_xy;
  out.truth_depths = meas_.truth_depths;
  out.ranging_errors = po.ranging_errors;
  out.localizer_input = po.localizer_input;
  out.ok = po.localized;
  out.error_2d.clear();
  if (out.ok) out.error_2d = po.error_2d;
}

RoundResult ScenarioRoundContext::run(uwp::Rng& rng) {
  RoundResult out;
  run_into(out, rng);
  return out;
}

RoundResult ScenarioRunner::run_round(const RoundOptions& opts, uwp::Rng& rng) const {
  ScenarioRoundContext ctx(*this, opts);
  return ctx.run(rng);
}

}  // namespace uwp::sim
