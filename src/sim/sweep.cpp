#include "sim/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "util/thread_pool.hpp"

namespace uwp::sim {

namespace {

std::size_t parse_threads(const char* s) {
  // Only plain decimal digits count; "-1", "abc" or "" fall back to 0 (all
  // cores) instead of wrapping through strtoul into a 2^64-worker request.
  if (s == nullptr || *s == '\0') return 0;
  for (const char* p = s; *p != '\0'; ++p)
    if (*p < '0' || *p > '9') return 0;
  const unsigned long long v = std::strtoull(s, nullptr, 10);
  return static_cast<std::size_t>(v > 1024 ? 1024 : v);
}

}  // namespace

std::size_t threads_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      return parse_threads(argv[i] + 10);
  }
  return parse_threads(std::getenv("UWP_THREADS"));
}

const char* trace_out_from_args(int argc, char** argv) {
  constexpr std::size_t kLen = sizeof("--trace-out=") - 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", kLen) == 0 && argv[i][kLen] != '\0')
      return argv[i] + kLen;
  }
  return nullptr;
}

void SweepTally::add(const SweepResult& r) {
  trials += r.per_trial.size();
  wall_seconds += r.wall_seconds;
  threads_used = r.threads_used;
}

void SweepTally::print_footer() const {
  std::printf("\n[sweep] %zu trials across %zu threads in %.2f s\n", trials,
              threads_used, wall_seconds);
}

std::uint64_t trial_seed(std::uint64_t master_seed, std::uint64_t trial) {
  // splitmix64 finalizer over the (seed, trial) pair: cheap, full-avalanche,
  // and the standard way to spawn uncorrelated streams from one seed.
  std::uint64_t z = master_seed + 0x9e3779b97f4a7c15ull * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

SweepResult SweepRunner::run(const TrialFn& fn) const {
  return run([] { return std::shared_ptr<void>(); },
             [&fn](std::size_t t, Rng& rng, void*) { return fn(t, rng); });
}

SweepResult SweepRunner::run(const ContextFactory& make_context,
                             const ContextTrialFn& fn) const {
  SweepResult res;
  res.per_trial.resize(opts_.trials);
  res.threads_used = ThreadPool::resolve_thread_count(opts_.threads);

  std::atomic<std::size_t> failed{0};
  // One lazily-created context per worker lane; a lane runs its trials
  // sequentially, so the context is never shared.
  std::vector<std::shared_ptr<void>> contexts(res.threads_used);
  const auto run_trial = [&](std::size_t lane, std::size_t t) {
    if (contexts[lane] == nullptr) contexts[lane] = make_context();
    Rng rng(trial_seed(opts_.master_seed, t));
    try {
      res.per_trial[t] = fn(t, rng, contexts[lane].get());
    } catch (const std::exception&) {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (res.threads_used <= 1 || opts_.trials <= 1) {
    for (std::size_t t = 0; t < opts_.trials; ++t) run_trial(0, t);
  } else {
    ThreadPool pool(res.threads_used);
    pool.parallel_for_lanes(opts_.trials, run_trial);
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.failed_trials = failed.load();

  std::size_t total = 0;
  for (const auto& v : res.per_trial) total += v.size();
  res.samples.reserve(total);
  for (const auto& v : res.per_trial)
    for (const double x : v)
      if (!std::isnan(x)) res.samples.push_back(x);
  res.summary = summarize(res.samples);
  return res;
}

}  // namespace uwp::sim
