// Reporting helpers shared by the benchmark harnesses: error aggregation and
// text-mode CDF/series printing in the shape of the paper's figures.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace uwp::sim {

// Print "label: median=... p95=... mean=... (n=...)" to stdout.
void print_summary_row(const std::string& label, std::span<const double> errors);

// Print a text CDF table: one "x p" row per point.
void print_cdf(const std::string& label, std::span<const double> values,
               std::size_t points = 11);

// Render a crude inline histogram bar (for eyeballing distributions in bench
// output).
std::string bar(double fraction, std::size_t width = 40);

// Filter values by a predicate index set: returns values[i] for i in idx.
std::vector<double> take(std::span<const double> values, std::span<const std::size_t> idx);

// Circular error probable: the radius containing `fraction` of the radial
// error samples (CEP50 by default — the localization literature's headline
// number). Throws std::invalid_argument on empty input or fraction outside
// [0, 1], matching uwp::percentile.
double cep(std::span<const double> radial_errors, double fraction = 0.5);

// Minimal google-benchmark-compatible JSON report for the plain-main()
// bench binaries: when `--benchmark_format=json` is on the command line,
// a bench collects named wall-clock timings and emits
//   {"context": {...}, "benchmarks": [{"name", "real_time", ...}]}
// to stdout, so CI can harvest perf numbers (BENCH_pipeline.json) with the
// same tooling it would use for google-benchmark binaries.
class BenchJsonReporter {
 public:
  // True when --benchmark_format=json was passed.
  static bool requested(int argc, char** argv);

  void add(const std::string& name, double real_seconds, std::size_t iterations = 1);
  // Like add, but also emits google-benchmark's "items_per_second" counter —
  // how bench_fleet reports aggregate rounds/sec next to latency entries.
  void add_with_rate(const std::string& name, double real_seconds,
                     std::size_t iterations, double items_per_second);
  // Emit the JSON document to stdout.
  void write() const;

 private:
  struct Entry {
    std::string name;
    double seconds = 0.0;
    std::size_t iterations = 1;
    double items_per_second = 0.0;  // emitted when > 0
  };
  std::vector<Entry> entries_;
};

// Throughput/latency aggregate of a many-session serving run: rounds/sec
// over the wall clock plus p50/p99/p999 of the per-round service latencies
// (p999 is the tail the telemetry span histograms track — worth watching
// separately because a handful of slow solver rounds dominate it).
// Latencies may be empty (percentiles report 0); wall_seconds <= 0 reports
// 0 rounds/sec.
struct RateLatency {
  double rounds_per_sec = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
};

RateLatency rate_latency(std::size_t rounds, double wall_seconds,
                         std::span<const double> latencies_s);

}  // namespace uwp::sim
