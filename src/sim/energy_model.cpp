#include "sim/energy_model.hpp"

#include <algorithm>

namespace uwp::sim {

EnergyModel EnergyModel::watch_ultra_siren() {
  EnergyModel m;
  m.battery_wh = 2.1;          // ~542 mAh at 3.86 V
  m.idle_power_w = 0.10;
  m.playback_power_w = 0.33;
  m.record_power_w = 0.0;
  m.duty_cycle = 1.0;          // continuous SOS siren
  return m;
}

EnergyModel EnergyModel::phone_preamble_tx() {
  EnergyModel m;
  m.battery_wh = 11.55;        // Galaxy S9, 3000 mAh at 3.85 V
  m.idle_power_w = 0.9;        // screen + app awake
  m.playback_power_w = 1.1;
  m.record_power_w = 0.15;
  m.duty_cycle = 0.223 / 3.0;  // 223 ms preamble every 3 s
  return m;
}

double EnergyModel::average_power_w() const {
  return idle_power_w + record_power_w + duty_cycle * playback_power_w;
}

double EnergyModel::battery_drop_fraction(double hours) const {
  return std::min(average_power_w() * hours / battery_wh, 1.0);
}

double EnergyModel::hours_to_drop(double fraction) const {
  return fraction * battery_wh / average_power_w();
}

}  // namespace uwp::sim
