// Duty-cycle energy model standing in for the paper's battery-life
// measurement (§3.1): the smartwatch looping the SOS siren lost 90% battery
// in 4.5 h; the phone transmitting the preamble every 3 s lost 63%. We model
// average power = idle + duty * playback and report the drain curve.
#pragma once

namespace uwp::sim {

struct EnergyModel {
  double battery_wh = 1.1;          // device battery capacity
  double idle_power_w = 0.08;       // screen-on baseline
  double playback_power_w = 0.45;   // speaker at max volume
  double record_power_w = 0.05;     // microphone pipeline
  double duty_cycle = 1.0;          // fraction of time playing

  static EnergyModel watch_ultra_siren();     // continuous siren
  static EnergyModel phone_preamble_tx();     // 223 ms preamble every 3 s

  double average_power_w() const;
  // Battery fraction consumed after `hours` (clamped to 1).
  double battery_drop_fraction(double hours) const;
  // Hours until the battery fraction `fraction` is consumed.
  double hours_to_drop(double fraction) const;
};

}  // namespace uwp::sim
