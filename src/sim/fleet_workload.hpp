// Workload generation for the fleet layer: a deterministic mix of
// positioning-group scenarios (static testbeds, lawnmower riders, waypoint
// tours, dropout/churn-prone groups, and a slice of full packet-level DES
// groups) in the shape a serving fleet would see. Every scenario is a pure
// function of (params.seed, session_id) via the SweepRunner's splitmix64
// stream discipline, so a workload regenerated from the same parameters —
// e.g. by the fleet trace replayer — is identical field for field.
#pragma once

#include <cstdint>
#include <vector>

#include "pipeline/arrival_error.hpp"
#include "pipeline/closed_form.hpp"

namespace uwp::sim {

enum class GroupScenarioKind : std::uint8_t {
  kStatic = 0,      // fixed geometry, every round measured
  kLawnmower = 1,   // some devices ride 1D triangle-wave tracks between rounds
  kWaypoint = 2,    // some devices tour waypoint loops between rounds
  kDropoutChurn = 3,  // static geometry, rounds randomly jammed (coasted)
  kPacketDes = 4,   // full packet-level DES front-end (des::DesSessionSource)
};

const char* to_string(GroupScenarioKind kind);

// Closed-form per-device motion, sampled at round starts by the fleet
// session (mirrors des::LawnmowerTrack / des::WaypointTrack so DES-backed
// sessions can share the same parameters).
struct GroupMotion {
  // Triangle-wave track (kLawnmower): ride from the origin along `axis` for
  // `span_m` and back at `speed_mps`, offset by `phase_s`. span_m == 0
  // means the device holds its origin.
  Vec3 axis{1.0, 0.0, 0.0};
  double span_m = 0.0;
  double speed_mps = 0.0;
  double phase_s = 0.0;
  // Waypoint loop (kWaypoint): >= 2 points toured at speed_mps; empty means
  // the device holds its origin.
  std::vector<Vec3> waypoints;
};

// One positioning group's full serving description: who it is, where its
// devices are and how they move, which error model its links see, and its
// lifecycle inside the fleet (admission tick, number of scheduled rounds).
struct GroupScenario {
  std::uint64_t session_id = 0;
  GroupScenarioKind kind = GroupScenarioKind::kStatic;
  pipeline::ClosedFormScene scene;  // geometry, audio, protocol, sensors
  std::vector<GroupMotion> motion;  // per device; empty for static kinds
  pipeline::ArrivalErrorModel arrival{};
  double sound_speed_error_mps = 22.0;
  // Per-round probability the round is jammed and the session coasts
  // (kDropoutChurn; 0 elsewhere).
  double dropout_prob = 0.0;
  // Lifecycle: the session is admitted at `admit_tick` and evicted after
  // `lifetime_rounds` scheduler ticks (each tick is one round or one coast).
  std::size_t admit_tick = 0;
  std::size_t lifetime_rounds = 8;
  double round_period_s = 2.0;  // tracker prediction interval between ticks
};

struct WorkloadParams {
  std::size_t sessions = 256;
  std::uint64_t seed = 0xF1EE7u;
  std::size_t min_group_size = 4;
  std::size_t max_group_size = 8;
  std::size_t min_rounds = 6;
  std::size_t max_rounds = 12;
  // Admission times are staggered uniformly over [0, admit_spread_ticks].
  std::size_t admit_spread_ticks = 4;
  // Include the packet-level DES slice (a few percent of sessions). Off
  // lets huge benches skip DES construction cost.
  bool include_des = true;
  // Force every session to one GroupScenarioKind (single-kind fleets for
  // targeted load tests and the per-kind example specs); -1 = the serving
  // mix. The kind draw still happens, so forcing never shifts a session's
  // geometry/audio/arrival draws relative to the mixed workload (draws in
  // the kind-dependent branch naturally follow the forced kind).
  int force_kind = -1;
};

// The scenario for one session id; pure in (params, session_id).
GroupScenario make_group_scenario(const WorkloadParams& params, std::uint64_t session_id);

// All sessions of the workload, indexed by session id.
std::vector<GroupScenario> make_workload(const WorkloadParams& params);

}  // namespace uwp::sim
