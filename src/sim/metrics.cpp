#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/simd.hpp"

namespace uwp::sim {

void print_summary_row(const std::string& label, std::span<const double> errors) {
  if (errors.empty()) {
    std::printf("%-36s  (no samples)\n", label.c_str());
    return;
  }
  const Summary s = summarize(errors);
  std::printf("%-36s median=%6.2f  p95=%6.2f  mean=%6.2f  (n=%zu)\n", label.c_str(),
              s.median, s.p95, s.mean, s.count);
}

void print_cdf(const std::string& label, std::span<const double> values,
               std::size_t points) {
  std::printf("%s CDF:\n", label.c_str());
  for (const auto& [x, p] : cdf_points(values, points))
    std::printf("  %8.3f  %5.3f  %s\n", x, p, bar(p).c_str());
}

std::string bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const std::size_t filled = static_cast<std::size_t>(fraction * static_cast<double>(width));
  std::string out(filled, '#');
  out.resize(width, '.');
  return out;
}

std::vector<double> take(std::span<const double> values,
                         std::span<const std::size_t> idx) {
  std::vector<double> out;
  out.reserve(idx.size());
  for (std::size_t i : idx)
    if (i < values.size()) out.push_back(values[i]);
  return out;
}

double cep(std::span<const double> radial_errors, double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("cep: fraction out of [0, 1]");
  return percentile(radial_errors, fraction * 100.0);
}

bool BenchJsonReporter::requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) return true;
  return false;
}

void BenchJsonReporter::add(const std::string& name, double real_seconds,
                            std::size_t iterations) {
  entries_.push_back({name, real_seconds, iterations, 0.0});
}

void BenchJsonReporter::add_with_rate(const std::string& name, double real_seconds,
                                      std::size_t iterations, double items_per_second) {
  entries_.push_back({name, real_seconds, iterations, items_per_second});
}

void BenchJsonReporter::write() const {
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::printf("{\n  \"context\": {\n");
  std::printf("    \"library_build_type\": \"%s\",\n", build_type);
  std::printf("    \"num_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::printf("    \"simd\": \"%s\",\n", simd::kBackendName);
  std::printf("    \"uwp_simd\": \"%s\"\n", simd::kSimdSetting);
  std::printf("  },\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const double per_iter_s = e.seconds / static_cast<double>(e.iterations);
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", e.name.c_str());
    std::printf("      \"run_type\": \"iteration\",\n");
    std::printf("      \"iterations\": %zu,\n", e.iterations);
    std::printf("      \"real_time\": %.6e,\n", per_iter_s * 1e3);
    std::printf("      \"cpu_time\": %.6e,\n", per_iter_s * 1e3);
    if (e.items_per_second > 0.0)
      std::printf("      \"items_per_second\": %.6e,\n", e.items_per_second);
    std::printf("      \"time_unit\": \"ms\"\n");
    std::printf("    }%s\n", i + 1 < entries_.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

RateLatency rate_latency(std::size_t rounds, double wall_seconds,
                         std::span<const double> latencies_s) {
  RateLatency out;
  if (wall_seconds > 0.0)
    out.rounds_per_sec = static_cast<double>(rounds) / wall_seconds;
  if (!latencies_s.empty()) {
    out.p50_s = percentile(latencies_s, 50.0);
    out.p99_s = percentile(latencies_s, 99.0);
    out.p999_s = percentile(latencies_s, 99.9);
  }
  return out;
}

}  // namespace uwp::sim
