#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace uwp::sim {

void print_summary_row(const std::string& label, std::span<const double> errors) {
  if (errors.empty()) {
    std::printf("%-36s  (no samples)\n", label.c_str());
    return;
  }
  const Summary s = summarize(errors);
  std::printf("%-36s median=%6.2f  p95=%6.2f  mean=%6.2f  (n=%zu)\n", label.c_str(),
              s.median, s.p95, s.mean, s.count);
}

void print_cdf(const std::string& label, std::span<const double> values,
               std::size_t points) {
  std::printf("%s CDF:\n", label.c_str());
  for (const auto& [x, p] : cdf_points(values, points))
    std::printf("  %8.3f  %5.3f  %s\n", x, p, bar(p).c_str());
}

std::string bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const std::size_t filled = static_cast<std::size_t>(fraction * static_cast<double>(width));
  std::string out(filled, '#');
  out.resize(width, '.');
  return out;
}

std::vector<double> take(std::span<const double> values,
                         std::span<const std::size_t> idx) {
  std::vector<double> out;
  out.reserve(idx.size());
  for (std::size_t i : idx)
    if (i < values.size()) out.push_back(values[i]);
  return out;
}

double cep(std::span<const double> radial_errors, double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("cep: fraction out of [0, 1]");
  return percentile(radial_errors, fraction * 100.0);
}

}  // namespace uwp::sim
