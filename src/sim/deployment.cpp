#include "sim/deployment.hpp"

#include <cmath>

namespace uwp::sim {

void Deployment::connect_all() {
  const std::size_t n = devices.size();
  connectivity = Matrix(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) connectivity(i, i) = 0.0;
  occlusion_db = Matrix(n, n, 0.0);
}

void Deployment::drop_link(std::size_t i, std::size_t j) {
  connectivity(i, j) = connectivity(j, i) = 0.0;
}

void Deployment::occlude_link(std::size_t i, std::size_t j, double db) {
  occlusion_db(i, j) = occlusion_db(j, i) = db;
}

audio::AudioTimingConfig random_audio_timing(uwp::Rng& rng, double skew_ppm_max) {
  audio::AudioTimingConfig cfg;
  cfg.speaker_skew_ppm = rng.uniform(-skew_ppm_max, skew_ppm_max);
  cfg.mic_skew_ppm = rng.uniform(-skew_ppm_max, skew_ppm_max);
  cfg.speaker_start_s = rng.uniform(0.0, 2.0);
  cfg.mic_start_s = rng.uniform(0.0, 2.0);
  return cfg;
}

namespace {

Deployment make_testbed(channel::Environment env,
                        const std::vector<uwp::Vec3>& positions, uwp::Rng& rng) {
  Deployment d;
  d.env = std::move(env);
  for (const uwp::Vec3& p : positions) {
    ScenarioDevice dev;
    dev.position = p;
    dev.audio = random_audio_timing(rng);
    d.devices.push_back(dev);
  }
  d.protocol.num_devices = d.devices.size();
  d.connect_all();
  return d;
}

}  // namespace

Deployment make_dock_testbed(uwp::Rng& rng) {
  // Pairwise node distances spanning 3-25 m from the leader (Fig 17a),
  // devices hung at 1-3 m depth in 9 m of water.
  const std::vector<uwp::Vec3> positions = {
      {0.0, 0.0, 1.5},    // leader
      {4.5, 1.5, 2.0},    // pointed diver, within visual range
      {10.0, -3.0, 1.0},  //
      {14.0, 8.0, 2.5},   // left of the pointing line
      {23.0, -2.0, 3.0},  // far node, ~23 m out
  };
  return make_testbed(channel::make_dock(), positions, rng);
}

Deployment make_boathouse_testbed(uwp::Rng& rng) {
  // Two groups split across the water channel between islands (Fig 17b).
  const std::vector<uwp::Vec3> positions = {
      {0.0, 0.0, 1.0},    // leader, island A
      {5.0, -2.0, 1.5},   // pointed diver, island A
      {9.0, 3.0, 1.0},    //
      {19.0, 1.0, 2.0},   // island B
      {24.0, -4.0, 1.5},  // island B
  };
  return make_testbed(channel::make_boathouse(), positions, rng);
}

AnalyticalTopology random_analytical_topology(std::size_t n, uwp::Rng& rng) {
  AnalyticalTopology topo;
  topo.positions.resize(n);
  // Leader at the center of the 60 x 60 x 10 m volume, random height.
  topo.positions[0] = {0.0, 0.0, rng.uniform(0.0, 10.0)};
  if (n > 1) {
    // Device 1 within visual range: 4-9 m from the leader.
    const double r = rng.uniform(4.0, 9.0);
    const double ang = rng.uniform(-uwp::kPi, uwp::kPi);
    double dz = rng.uniform(-3.0, 3.0);
    double z1 = topo.positions[0].z + dz;
    z1 = std::min(std::max(z1, 0.0), 10.0);
    dz = z1 - topo.positions[0].z;
    const double horizontal = r > std::abs(dz) ? std::sqrt(r * r - dz * dz) : 0.0;
    topo.positions[1] = {horizontal * std::cos(ang), horizontal * std::sin(ang), z1};
  }
  for (std::size_t i = 2; i < n; ++i)
    topo.positions[i] = {rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0),
                         rng.uniform(0.0, 10.0)};
  return topo;
}

}  // namespace uwp::sim
