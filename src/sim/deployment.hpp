// Deployment descriptions: device placements, environments, connectivity and
// testbed presets matching the paper's Fig 17 topologies, plus the random
// topology generator used by the analytical evaluation (§2.1.5).
#pragma once

#include <vector>

#include "audio/device_audio.hpp"
#include "channel/environment.hpp"
#include "channel/propagation.hpp"
#include "phy/ofdm_preamble.hpp"
#include "proto/slot_schedule.hpp"
#include "util/geometry.hpp"
#include "util/matrix.hpp"
#include "util/random.hpp"

namespace uwp::sim {

struct ScenarioDevice {
  uwp::Vec3 position;  // z = depth (m)
  channel::DeviceModel model = channel::DeviceModel::samsung_s9();
  audio::AudioTimingConfig audio{};
};

struct Deployment {
  channel::Environment env;
  std::vector<ScenarioDevice> devices;  // device 0 = leader, 1 = pointed diver
  Matrix connectivity;                  // 1 = link exists (symmetric)
  Matrix occlusion_db;                  // per-link direct-path attenuation
  proto::ProtocolConfig protocol{};
  phy::PreambleConfig preamble{};

  std::size_t size() const { return devices.size(); }
  // Fully connect / zero occlusion helpers.
  void connect_all();
  void drop_link(std::size_t i, std::size_t j);
  void occlude_link(std::size_t i, std::size_t j, double db);
};

// Five-device testbed at the dock (Fig 17a): distances 3-25 m from the
// leader, depths 1-3 m in 9 m of water.
Deployment make_dock_testbed(uwp::Rng& rng);

// Five-device testbed at the boathouse (Fig 17b): two clusters separated by
// a water channel, 5 m deep, noisier site.
Deployment make_boathouse_testbed(uwp::Rng& rng);

// Random analytical topology (§2.1.5): N devices in a 60 x 60 x 10 m volume,
// leader at the center, device 1 at 4-9 m from the leader.
struct AnalyticalTopology {
  std::vector<uwp::Vec3> positions;
};
AnalyticalTopology random_analytical_topology(std::size_t n, uwp::Rng& rng);

// Default audio timing with random clock offsets/skews per [42].
audio::AudioTimingConfig random_audio_timing(uwp::Rng& rng, double skew_ppm_max = 40.0);

}  // namespace uwp::sim
