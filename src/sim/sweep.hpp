// Monte-Carlo sweep engine: fans N independent scenario trials across
// hardware threads. Every figure bench in the paper (fig06-fig22) is an
// embarrassingly-parallel loop of this shape — draw a random configuration,
// run it, collect error samples — so this is the one place that owns the
// "parallel, yet bit-reproducible" contract:
//
//   * each trial gets its own Rng seeded as splitmix64(master_seed, trial),
//     so trial streams never depend on execution order or thread count;
//   * samples are stored at the trial's index and flattened in trial order,
//     so the aggregate is bit-identical for any thread count, including the
//     serial threads=1 reference.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace uwp::sim {

struct SweepOptions {
  std::size_t trials = 200;
  std::uint64_t master_seed = 0x75770517u;
  // 0 = all hardware threads; 1 = serial (no pool, reference path).
  std::size_t threads = 0;
};

struct SweepResult {
  // Samples contributed by each trial, indexed by trial number. Rows are
  // kept verbatim, including any NaN sentinels a trial uses to mark misses
  // in fixed-position rows.
  std::vector<std::vector<double>> per_trial;
  // All samples flattened in trial order (not completion order). NaN
  // entries are excluded here so `summary` is always well-defined (sorting
  // NaNs is undefined behavior in percentile()).
  std::vector<double> samples;
  Summary summary;
  // Trials whose function threw (their sample set is empty).
  std::size_t failed_trials = 0;
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;
};

// One independent trial: produces zero or more samples (e.g. per-device
// localization errors) from its private deterministic stream.
using TrialFn = std::function<std::vector<double>(std::size_t trial, Rng& rng)>;

// Per-worker reusable context: `ContextFactory` runs once per worker lane
// and its product is handed to every trial that lane executes. This is how
// a pipeline::RoundPipeline (or sim::ScenarioRoundContext) keeps its solver
// workspaces warm across trials — trial results must not depend on the
// context's prior state, or bit-reproducibility across thread counts is
// lost.
//
// Example — one warm RoundPipeline per lane, reset between trials:
//
//   sim::SweepRunner runner(opts);
//   const sim::SweepResult res = runner.run(
//       [&] { return std::make_shared<pipeline::RoundPipeline>(popts); },
//       [&](std::size_t trial, uwp::Rng& rng, void* ctx) {
//         auto& pipe = *static_cast<pipeline::RoundPipeline*>(ctx);
//         pipe.reset();  // forget cross-round state; workspaces stay warm
//         std::vector<double> samples;
//         pipe.run_batch(model_for(trial), rounds, rng, samples);
//         return samples;
//       });
//
// Contexts live for one run() call. To stay warm across *several* sweeps,
// hand out contexts from a caller-owned pool and return them from the
// shared_ptr deleter — the next sweep's factory then reuses them instead of
// allocating fresh ones (tests/sim/sweep_test.cpp shows the pattern).
using ContextFactory = std::function<std::shared_ptr<void>()>;
using ContextTrialFn =
    std::function<std::vector<double>(std::size_t trial, Rng& rng, void* ctx)>;

// Thread-count convention shared by the bench binaries: `--threads=N` on the
// command line wins, else the UWP_THREADS environment variable, else 0 (all
// hardware threads). `--threads=1` is the serial reference path. Values that
// are not plain decimal digits fall back to 0; anything above 1024 is capped
// there (a typo'd or negative count must not try to spawn 2^64 workers).
std::size_t threads_from_args(int argc, char** argv);

// Packet-trace output convention for the DES binaries: the value of
// `--trace-out=FILE`, or nullptr when absent (tracing disabled).
const char* trace_out_from_args(int argc, char** argv);

// Accumulates sweep cost across a bench's series for the closing
// "[sweep] N trials across T threads in S s" footer.
struct SweepTally {
  std::size_t trials = 0;
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;

  void add(const SweepResult& r);
  void print_footer() const;
};

// Per-trial seed derivation (splitmix64 over master_seed + trial). Exposed so
// callers that need matched sub-streams (e.g. a paired baseline comparison on
// identical channel draws) can reproduce a trial outside the sweep.
std::uint64_t trial_seed(std::uint64_t master_seed, std::uint64_t trial);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  const SweepOptions& options() const { return opts_; }

  // Run all trials; blocks until done. Thread-safe w.r.t. the trial function
  // as long as `fn` only mutates its own trial's state (shared captures must
  // be read-only).
  SweepResult run(const TrialFn& fn) const;

  // Same contract, with a per-worker context (created lazily, one per lane).
  SweepResult run(const ContextFactory& make_context, const ContextTrialFn& fn) const;

 private:
  SweepOptions opts_;
};

}  // namespace uwp::sim
