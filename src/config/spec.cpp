#include "config/spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <type_traits>

namespace uwp::config {

const char* to_string(RunMode mode) {
  switch (mode) {
    case RunMode::kRound:
      return "round";
    case RunMode::kSweep:
      return "sweep";
    case RunMode::kDes:
      return "des";
    case RunMode::kFleet:
      return "fleet";
    case RunMode::kServe:
      return "serve";
  }
  return "?";
}

const char* to_string(DeploymentPreset preset) {
  switch (preset) {
    case DeploymentPreset::kDock:
      return "dock";
    case DeploymentPreset::kBoathouse:
      return "boathouse";
    case DeploymentPreset::kAnalytical:
      return "analytical";
    case DeploymentPreset::kExplicit:
      return "explicit";
  }
  return "?";
}

const char* to_string(EnvironmentPreset preset) {
  switch (preset) {
    case EnvironmentPreset::kPool:
      return "pool";
    case EnvironmentPreset::kDock:
      return "dock";
    case EnvironmentPreset::kViewpoint:
      return "viewpoint";
    case EnvironmentPreset::kBoathouse:
      return "boathouse";
  }
  return "?";
}

namespace {

const char* to_string(phy::MicMode mode) {
  switch (mode) {
    case phy::MicMode::kDual:
      return "dual";
    case phy::MicMode::kMic1Only:
      return "mic1";
    case phy::MicMode::kMic2Only:
      return "mic2";
  }
  return "?";
}

const char* kind_mix_string(int force_kind) {
  if (force_kind < 0) return "mixed";
  return sim::to_string(static_cast<sim::GroupScenarioKind>(force_kind));
}

// --- strict object reader ---------------------------------------------------
// Tracks which keys were consumed so unknown fields fail with their path —
// a typo'd knob must never silently fall back to a default.

class ObjectReader {
 public:
  ObjectReader(const Json& v, std::string path) : v_(v), path_(std::move(path)) {
    if (!v_.is_object()) throw SpecError(path_, "expected an object");
    used_.assign(v_.members().size(), false);
  }

  std::string sub(const std::string& key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  const Json* take(const char* key) {
    const std::vector<Json::Member>& ms = v_.members();
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (ms[i].first != key) continue;
      used_[i] = true;
      return &ms[i].second;
    }
    return nullptr;
  }

  void finish() const {
    const std::vector<Json::Member>& ms = v_.members();
    for (std::size_t i = 0; i < ms.size(); ++i)
      if (!used_[i]) throw SpecError(sub(ms[i].first), "unknown field");
  }

  void read(const char* key, bool& out) {
    if (const Json* j = take(key)) {
      if (!j->is_bool()) throw SpecError(sub(key), "expected a bool");
      out = j->as_bool();
    }
  }

  void read(const char* key, double& out) {
    if (const Json* j = take(key)) {
      if (!json_as_double(*j, out))
        throw SpecError(sub(key), "expected a number (or nan/inf/hexfloat string)");
    }
  }

  // One reader for every unsigned integral field. A template rather than
  // overloads because std::uint64_t seeds and std::size_t counts are the
  // same type on LP64 (the exact-match overloads above still win for bool,
  // double, int, and string fields).
  template <typename T>
  void read(const char* key, T& out) {
    static_assert(std::is_unsigned_v<T> && !std::is_same_v<T, bool>);
    if (const Json* j = take(key)) {
      std::uint64_t v = 0;
      if (!json_as_u64(*j, v))
        throw SpecError(sub(key), "expected an unsigned integer");
      out = static_cast<T>(v);
    }
  }

  void read(const char* key, int& out) {
    if (const Json* j = take(key)) {
      double d = 0.0;
      if (!json_as_double(*j, d) || d != std::floor(d) || d < -2147483648.0 ||
          d > 2147483647.0)
        throw SpecError(sub(key), "expected an integer");
      out = static_cast<int>(d);
    }
  }

  void read(const char* key, std::string& out) {
    if (const Json* j = take(key)) {
      if (!j->is_string()) throw SpecError(sub(key), "expected a string");
      out = j->as_string();
    }
  }

  // Enum field: match the string against to_string(values...).
  template <typename Enum, std::size_t N>
  void read_enum(const char* key, Enum& out, const Enum (&values)[N]) {
    const Json* j = take(key);
    if (j == nullptr) return;
    if (!j->is_string()) throw SpecError(sub(key), "expected a string");
    std::string choices;
    for (const Enum v : values) {
      if (j->as_string() == to_string(v)) {
        out = v;
        return;
      }
      if (!choices.empty()) choices += "|";
      choices += to_string(v);
    }
    throw SpecError(sub(key), "unknown value \"" + j->as_string() + "\" (expected " +
                                  choices + ")");
  }

 private:
  const Json& v_;
  std::string path_;
  std::vector<bool> used_;
};

double require_double(const Json& j, const std::string& path) {
  double out = 0.0;
  if (!json_as_double(j, out))
    throw SpecError(path, "expected a number (or nan/inf/hexfloat string)");
  return out;
}

Json vec3_to_json(const Vec3& v, bool hex) {
  Json arr = Json::array();
  arr.push_back(double_to_json(v.x, hex));
  arr.push_back(double_to_json(v.y, hex));
  arr.push_back(double_to_json(v.z, hex));
  return arr;
}

Vec3 vec3_from_json(const Json& j, const std::string& path) {
  if (!j.is_array() || j.items().size() != 3)
    throw SpecError(path, "expected [x, y, z]");
  return {require_double(j.items()[0], path + "[0]"),
          require_double(j.items()[1], path + "[1]"),
          require_double(j.items()[2], path + "[2]")};
}

// --- per-section codecs -----------------------------------------------------

Json deployment_to_json(const DeploymentSpec& d, bool hex) {
  Json o = Json::object();
  o.set("preset", Json::string(to_string(d.preset)));
  o.set("environment", Json::string(to_string(d.environment)));
  o.set("seed", u64_to_json(d.seed));
  o.set("devices", u64_to_json(d.devices));
  Json pos = Json::array();
  for (const Vec3& p : d.positions) pos.push_back(vec3_to_json(p, hex));
  o.set("positions", std::move(pos));
  o.set("random_audio", Json::boolean(d.random_audio));
  return o;
}

void deployment_from_json(const Json& v, const std::string& path, DeploymentSpec& d) {
  ObjectReader r(v, path);
  r.read_enum("preset", d.preset,
              {DeploymentPreset::kDock, DeploymentPreset::kBoathouse,
               DeploymentPreset::kAnalytical, DeploymentPreset::kExplicit});
  r.read_enum("environment", d.environment,
              {EnvironmentPreset::kPool, EnvironmentPreset::kDock,
               EnvironmentPreset::kViewpoint, EnvironmentPreset::kBoathouse});
  r.read("seed", d.seed);
  r.read("devices", d.devices);
  if (const Json* j = r.take("positions")) {
    if (!j->is_array()) throw SpecError(r.sub("positions"), "expected an array");
    d.positions.clear();
    for (std::size_t i = 0; i < j->items().size(); ++i)
      d.positions.push_back(vec3_from_json(
          j->items()[i], r.sub("positions") + "[" + std::to_string(i) + "]"));
  }
  r.read("random_audio", d.random_audio);
  r.finish();
}

Json arrival_to_json(const pipeline::ArrivalErrorModel& a, bool hex) {
  Json o = Json::object();
  o.set("sigma_m", double_to_json(a.sigma_m, hex));
  o.set("sigma_per_m", double_to_json(a.sigma_per_m, hex));
  o.set("detection_failure_prob", double_to_json(a.detection_failure_prob, hex));
  return o;
}

void arrival_from_json(const Json& v, const std::string& path,
                       pipeline::ArrivalErrorModel& a) {
  ObjectReader r(v, path);
  r.read("sigma_m", a.sigma_m);
  r.read("sigma_per_m", a.sigma_per_m);
  r.read("detection_failure_prob", a.detection_failure_prob);
  r.finish();
}

Json localizer_to_json(const core::LocalizerOptions& l, bool hex) {
  const core::OutlierOptions& out = l.outlier;
  // Signed ints ride verbatim as plain numbers (the int reader accepts
  // them), so even an invalid in-memory value round-trips exactly and
  // bit_equal stays honest; validation rejects it separately.
  Json smacof = Json::object();
  smacof.set("max_iterations", Json::number(out.smacof.max_iterations));
  smacof.set("rel_tolerance", double_to_json(out.smacof.rel_tolerance, hex));
  smacof.set("random_restarts", Json::number(out.smacof.random_restarts));
  smacof.set("init_spread", double_to_json(out.smacof.init_spread, hex));
  Json outlier = Json::object();
  outlier.set("stress_threshold", double_to_json(out.stress_threshold, hex));
  outlier.set("drop_ratio", double_to_json(out.drop_ratio, hex));
  outlier.set("max_outliers", Json::number(out.max_outliers));
  outlier.set("max_suspect_links", u64_to_json(out.max_suspect_links));
  outlier.set("search_threads", u64_to_json(out.search_threads));
  outlier.set("smacof", std::move(smacof));
  Json o = Json::object();
  o.set("outlier", std::move(outlier));
  return o;
}

void localizer_from_json(const Json& v, const std::string& path,
                         core::LocalizerOptions& l) {
  ObjectReader r(v, path);
  if (const Json* j = r.take("outlier")) {
    ObjectReader ro(*j, r.sub("outlier"));
    ro.read("stress_threshold", l.outlier.stress_threshold);
    ro.read("drop_ratio", l.outlier.drop_ratio);
    ro.read("max_outliers", l.outlier.max_outliers);
    ro.read("max_suspect_links", l.outlier.max_suspect_links);
    ro.read("search_threads", l.outlier.search_threads);
    if (const Json* s = ro.take("smacof")) {
      ObjectReader rs(*s, ro.sub("smacof"));
      rs.read("max_iterations", l.outlier.smacof.max_iterations);
      rs.read("rel_tolerance", l.outlier.smacof.rel_tolerance);
      rs.read("random_restarts", l.outlier.smacof.random_restarts);
      rs.read("init_spread", l.outlier.smacof.init_spread);
      rs.finish();
    }
    ro.finish();
  }
  r.finish();
}

Json round_to_json(const sim::RoundOptions& o, bool hex) {
  Json j = Json::object();
  j.set("waveform_phy", Json::boolean(o.waveform_phy));
  j.set("arrival", arrival_to_json(o.fast_arrival, hex));
  j.set("quantize_payload", Json::boolean(o.quantize_payload));
  j.set("sound_speed_error_mps", double_to_json(o.sound_speed_error_mps, hex));
  j.set("mic_mode", Json::string(to_string(o.mic_mode)));
  Json depth = Json::object();
  depth.set("bias_m", double_to_json(o.depth_sensor.bias_m, hex));
  depth.set("noise_sigma_m", double_to_json(o.depth_sensor.noise_sigma_m, hex));
  depth.set("quantization_m", double_to_json(o.depth_sensor.quantization_m, hex));
  j.set("depth_sensor", std::move(depth));
  Json pointing = Json::object();
  pointing.set("sigma_deg", double_to_json(o.pointing.sigma_deg, hex));
  pointing.set("sigma_per_meter_deg",
               double_to_json(o.pointing.sigma_per_meter_deg, hex));
  j.set("pointing", std::move(pointing));
  j.set("localizer", localizer_to_json(o.localizer, hex));
  return j;
}

void round_from_json(const Json& v, const std::string& path, sim::RoundOptions& o) {
  ObjectReader r(v, path);
  r.read("waveform_phy", o.waveform_phy);
  if (const Json* j = r.take("arrival"))
    arrival_from_json(*j, r.sub("arrival"), o.fast_arrival);
  r.read("quantize_payload", o.quantize_payload);
  r.read("sound_speed_error_mps", o.sound_speed_error_mps);
  r.read_enum("mic_mode", o.mic_mode,
              {phy::MicMode::kDual, phy::MicMode::kMic1Only, phy::MicMode::kMic2Only});
  if (const Json* j = r.take("depth_sensor")) {
    ObjectReader rd(*j, r.sub("depth_sensor"));
    rd.read("bias_m", o.depth_sensor.bias_m);
    rd.read("noise_sigma_m", o.depth_sensor.noise_sigma_m);
    rd.read("quantization_m", o.depth_sensor.quantization_m);
    rd.finish();
  }
  if (const Json* j = r.take("pointing")) {
    ObjectReader rp(*j, r.sub("pointing"));
    rp.read("sigma_deg", o.pointing.sigma_deg);
    rp.read("sigma_per_meter_deg", o.pointing.sigma_per_meter_deg);
    rp.finish();
  }
  if (const Json* j = r.take("localizer"))
    localizer_from_json(*j, r.sub("localizer"), o.localizer);
  r.finish();
}

Json protocol_to_json(const proto::ProtocolConfig& p, bool hex) {
  Json o = Json::object();
  o.set("num_devices", u64_to_json(p.num_devices));
  o.set("delta0_s", double_to_json(p.delta0_s, hex));
  o.set("t_packet_s", double_to_json(p.t_packet_s, hex));
  o.set("t_guard_s", double_to_json(p.t_guard_s, hex));
  o.set("sound_speed_mps", double_to_json(p.sound_speed_mps, hex));
  o.set("fs_hz", double_to_json(p.fs_hz, hex));
  return o;
}

void protocol_from_json(const Json& v, const std::string& path,
                        proto::ProtocolConfig& p) {
  ObjectReader r(v, path);
  r.read("num_devices", p.num_devices);
  r.read("delta0_s", p.delta0_s);
  r.read("t_packet_s", p.t_packet_s);
  r.read("t_guard_s", p.t_guard_s);
  r.read("sound_speed_mps", p.sound_speed_mps);
  r.read("fs_hz", p.fs_hz);
  r.finish();
}

Json motion_to_json(const MotionSpec& m, bool hex) {
  Json o = Json::object();
  o.set("node", u64_to_json(m.node));
  o.set("axis", vec3_to_json(m.motion.axis, hex));
  o.set("span_m", double_to_json(m.motion.span_m, hex));
  o.set("speed_mps", double_to_json(m.motion.speed_mps, hex));
  o.set("phase_s", double_to_json(m.motion.phase_s, hex));
  Json wps = Json::array();
  for (const Vec3& w : m.motion.waypoints) wps.push_back(vec3_to_json(w, hex));
  o.set("waypoints", std::move(wps));
  return o;
}

void motion_from_json(const Json& v, const std::string& path, MotionSpec& m) {
  ObjectReader r(v, path);
  r.read("node", m.node);
  if (const Json* j = r.take("axis")) m.motion.axis = vec3_from_json(*j, r.sub("axis"));
  r.read("span_m", m.motion.span_m);
  r.read("speed_mps", m.motion.speed_mps);
  r.read("phase_s", m.motion.phase_s);
  if (const Json* j = r.take("waypoints")) {
    if (!j->is_array()) throw SpecError(r.sub("waypoints"), "expected an array");
    m.motion.waypoints.clear();
    for (std::size_t i = 0; i < j->items().size(); ++i)
      m.motion.waypoints.push_back(vec3_from_json(
          j->items()[i], r.sub("waypoints") + "[" + std::to_string(i) + "]"));
  }
  r.finish();
}

Json des_to_json(const DesSpec& d, bool hex) {
  Json o = Json::object();
  o.set("rounds", u64_to_json(d.rounds));
  o.set("round_period_s", double_to_json(d.round_period_s, hex));
  o.set("max_range_m", double_to_json(d.max_range_m, hex));
  o.set("ideal_arrivals", Json::boolean(d.ideal_arrivals));
  Json tracker = Json::object();
  tracker.set("accel_noise", double_to_json(d.tracker.accel_noise, hex));
  tracker.set("measurement_sigma_m",
              double_to_json(d.tracker.measurement_sigma_m, hex));
  tracker.set("velocity_decay_tau_s",
              double_to_json(d.tracker.velocity_decay_tau_s, hex));
  tracker.set("gate_sigmas", double_to_json(d.tracker.gate_sigmas, hex));
  o.set("tracker", std::move(tracker));
  Json motion = Json::array();
  for (const MotionSpec& m : d.motion) motion.push_back(motion_to_json(m, hex));
  o.set("motion", std::move(motion));
  return o;
}

void des_from_json(const Json& v, const std::string& path, DesSpec& d) {
  ObjectReader r(v, path);
  r.read("rounds", d.rounds);
  r.read("round_period_s", d.round_period_s);
  r.read("max_range_m", d.max_range_m);
  r.read("ideal_arrivals", d.ideal_arrivals);
  if (const Json* j = r.take("tracker")) {
    ObjectReader rt(*j, r.sub("tracker"));
    rt.read("accel_noise", d.tracker.accel_noise);
    rt.read("measurement_sigma_m", d.tracker.measurement_sigma_m);
    rt.read("velocity_decay_tau_s", d.tracker.velocity_decay_tau_s);
    rt.read("gate_sigmas", d.tracker.gate_sigmas);
    rt.finish();
  }
  if (const Json* j = r.take("motion")) {
    if (!j->is_array()) throw SpecError(r.sub("motion"), "expected an array");
    d.motion.clear();
    for (std::size_t i = 0; i < j->items().size(); ++i) {
      MotionSpec m;
      motion_from_json(j->items()[i],
                       r.sub("motion") + "[" + std::to_string(i) + "]", m);
      d.motion.push_back(std::move(m));
    }
  }
  r.finish();
}

Json sweep_to_json(const sim::SweepOptions& s) {
  Json o = Json::object();
  o.set("trials", u64_to_json(s.trials));
  o.set("master_seed", u64_to_json(s.master_seed));
  o.set("threads", u64_to_json(s.threads));
  return o;
}

void sweep_from_json(const Json& v, const std::string& path, sim::SweepOptions& s) {
  ObjectReader r(v, path);
  r.read("trials", s.trials);
  r.read("master_seed", s.master_seed);
  r.read("threads", s.threads);
  r.finish();
}

Json server_to_json(const ServeSpec& s, bool hex) {
  const fleet::ShaperOptions& sh = s.options.shaping;
  Json shaping = Json::object();
  shaping.set("policy", Json::string(to_string(sh.policy)));
  shaping.set("ingest_shards", u64_to_json(sh.ingest_shards));
  shaping.set("queue_depth", u64_to_json(sh.queue_depth));
  shaping.set("drain_rounds_per_s", double_to_json(sh.drain_rounds_per_s, hex));
  shaping.set("rate_rounds_per_s", double_to_json(sh.rate_rounds_per_s, hex));
  shaping.set("burst_rounds", double_to_json(sh.burst_rounds, hex));
  shaping.set("feedback_threshold", double_to_json(sh.feedback_threshold, hex));
  shaping.set("defer_delay_s", double_to_json(sh.defer_delay_s, hex));
  shaping.set("max_defers", u64_to_json(sh.max_defers));
  Json o = Json::object();
  o.set("workers", u64_to_json(s.options.workers));
  o.set("queue_depth", u64_to_json(s.options.queue_depth));
  o.set("tick_period_s", double_to_json(s.tick_period_s, hex));
  o.set("transport_capacity", u64_to_json(s.transport_capacity));
  o.set("shaping", std::move(shaping));
  return o;
}

void server_from_json(const Json& v, const std::string& path, ServeSpec& s) {
  ObjectReader r(v, path);
  r.read("workers", s.options.workers);
  r.read("queue_depth", s.options.queue_depth);
  r.read("tick_period_s", s.tick_period_s);
  r.read("transport_capacity", s.transport_capacity);
  if (const Json* j = r.take("shaping")) {
    fleet::ShaperOptions& sh = s.options.shaping;
    ObjectReader rs(*j, r.sub("shaping"));
    rs.read_enum("policy", sh.policy,
                 {fleet::AdmissionPolicy::kAdmitAll, fleet::AdmissionPolicy::kShed,
                  fleet::AdmissionPolicy::kDefer});
    rs.read("ingest_shards", sh.ingest_shards);
    rs.read("queue_depth", sh.queue_depth);
    rs.read("drain_rounds_per_s", sh.drain_rounds_per_s);
    rs.read("rate_rounds_per_s", sh.rate_rounds_per_s);
    rs.read("burst_rounds", sh.burst_rounds);
    rs.read("feedback_threshold", sh.feedback_threshold);
    rs.read("defer_delay_s", sh.defer_delay_s);
    rs.read("max_defers", sh.max_defers);
    rs.finish();
  }
  r.finish();
}

Json fleet_to_json(const FleetSpec& f, bool hex) {
  Json workload = Json::object();
  workload.set("sessions", u64_to_json(f.workload.sessions));
  workload.set("seed", u64_to_json(f.workload.seed));
  workload.set("min_group_size", u64_to_json(f.workload.min_group_size));
  workload.set("max_group_size", u64_to_json(f.workload.max_group_size));
  workload.set("min_rounds", u64_to_json(f.workload.min_rounds));
  workload.set("max_rounds", u64_to_json(f.workload.max_rounds));
  workload.set("admit_spread_ticks", u64_to_json(f.workload.admit_spread_ticks));
  workload.set("include_des", Json::boolean(f.workload.include_des));
  workload.set("kind_mix", Json::string(kind_mix_string(f.workload.force_kind)));
  Json o = Json::object();
  o.set("master_seed", u64_to_json(f.options.master_seed));
  o.set("shards", u64_to_json(f.options.shards));
  o.set("measure_latency", Json::boolean(f.options.measure_latency));
  o.set("workload", std::move(workload));
  o.set("server", server_to_json(f.server, hex));
  return o;
}

void fleet_from_json(const Json& v, const std::string& path, FleetSpec& f) {
  ObjectReader r(v, path);
  r.read("master_seed", f.options.master_seed);
  r.read("shards", f.options.shards);
  r.read("measure_latency", f.options.measure_latency);
  if (const Json* j = r.take("workload")) {
    ObjectReader rw(*j, r.sub("workload"));
    rw.read("sessions", f.workload.sessions);
    rw.read("seed", f.workload.seed);
    rw.read("min_group_size", f.workload.min_group_size);
    rw.read("max_group_size", f.workload.max_group_size);
    rw.read("min_rounds", f.workload.min_rounds);
    rw.read("max_rounds", f.workload.max_rounds);
    rw.read("admit_spread_ticks", f.workload.admit_spread_ticks);
    rw.read("include_des", f.workload.include_des);
    if (const Json* k = rw.take("kind_mix")) {
      if (!k->is_string()) throw SpecError(rw.sub("kind_mix"), "expected a string");
      const std::string& s = k->as_string();
      if (s == "mixed") {
        f.workload.force_kind = -1;
      } else {
        int found = -1;
        for (int kind = 0; kind <= static_cast<int>(sim::GroupScenarioKind::kPacketDes);
             ++kind)
          if (s == sim::to_string(static_cast<sim::GroupScenarioKind>(kind)))
            found = kind;
        if (found < 0)
          throw SpecError(rw.sub("kind_mix"),
                          "unknown value \"" + s +
                              "\" (expected mixed|static|lawnmower|waypoint|"
                              "dropout-churn|packet-des)");
        f.workload.force_kind = found;
      }
    }
    rw.finish();
  }
  if (const Json* j = r.take("server")) server_from_json(*j, r.sub("server"), f.server);
  r.finish();
}

Json telemetry_to_json(const TelemetrySpec& t) {
  Json o = Json::object();
  o.set("enabled", Json::boolean(t.enabled));
  o.set("timing", Json::boolean(t.timing));
  o.set("window_ticks", u64_to_json(t.window_ticks));
  o.set("ring_capacity", u64_to_json(t.ring_capacity));
  Json trace = Json::object();
  trace.set("enabled", Json::boolean(t.trace.enabled));
  trace.set("max_spans", u64_to_json(t.trace.max_spans));
  o.set("trace", std::move(trace));
  Json flight = Json::object();
  flight.set("capacity", u64_to_json(t.flight.capacity));
  flight.set("max_dumps", u64_to_json(t.flight.max_dumps));
  flight.set("evict_storm", u64_to_json(t.flight.evict_storm));
  flight.set("shed_burst", u64_to_json(t.flight.shed_burst));
  flight.set("localize_failures", u64_to_json(t.flight.localize_failures));
  o.set("flight", std::move(flight));
  return o;
}

void telemetry_from_json(const Json& v, const std::string& path, TelemetrySpec& t) {
  ObjectReader r(v, path);
  r.read("enabled", t.enabled);
  r.read("timing", t.timing);
  r.read("window_ticks", t.window_ticks);
  r.read("ring_capacity", t.ring_capacity);
  if (const Json* j = r.take("trace")) {
    ObjectReader rt(*j, r.sub("trace"));
    rt.read("enabled", t.trace.enabled);
    rt.read("max_spans", t.trace.max_spans);
    rt.finish();
  }
  if (const Json* j = r.take("flight")) {
    ObjectReader rf(*j, r.sub("flight"));
    rf.read("capacity", t.flight.capacity);
    rf.read("max_dumps", t.flight.max_dumps);
    rf.read("evict_storm", t.flight.evict_storm);
    rf.read("shed_burst", t.flight.shed_burst);
    rf.read("localize_failures", t.flight.localize_failures);
    rf.finish();
  }
  r.finish();
}

Json control_to_json(const ControlSpec& c, bool hex) {
  Json o = Json::object();
  o.set("enabled", Json::boolean(c.enabled));
  o.set("arena", Json::boolean(c.arena));
  o.set("shaper", Json::boolean(c.shaper));
  o.set("solver", Json::boolean(c.solver));
  o.set("evict_storm", u64_to_json(c.evict_storm));
  o.set("retain_base", u64_to_json(c.retain_base));
  o.set("retain_max", u64_to_json(c.retain_max));
  o.set("rate_step", double_to_json(c.rate_step, hex));
  o.set("rate_max_multiplier", double_to_json(c.rate_max_multiplier, hex));
  o.set("solver_iters_high", u64_to_json(c.solver_iters_high));
  o.set("solver_iters_low", u64_to_json(c.solver_iters_low));
  o.set("max_search_threads", u64_to_json(c.max_search_threads));
  return o;
}

void control_from_json(const Json& v, const std::string& path, ControlSpec& c) {
  ObjectReader r(v, path);
  r.read("enabled", c.enabled);
  r.read("arena", c.arena);
  r.read("shaper", c.shaper);
  r.read("solver", c.solver);
  r.read("evict_storm", c.evict_storm);
  r.read("retain_base", c.retain_base);
  r.read("retain_max", c.retain_max);
  r.read("rate_step", c.rate_step);
  r.read("rate_max_multiplier", c.rate_max_multiplier);
  r.read("solver_iters_high", c.solver_iters_high);
  r.read("solver_iters_low", c.solver_iters_low);
  r.read("max_search_threads", c.max_search_threads);
  r.finish();
}

}  // namespace

// --- top level --------------------------------------------------------------

Json to_json(const ScenarioSpec& spec, bool hexfloat) {
  Json o = Json::object();
  o.set("name", Json::string(spec.name));
  o.set("mode", Json::string(to_string(spec.mode)));
  o.set("deployment", deployment_to_json(spec.deployment, hexfloat));
  o.set("round", round_to_json(spec.round, hexfloat));
  o.set("protocol", protocol_to_json(spec.protocol, hexfloat));
  o.set("des", des_to_json(spec.des, hexfloat));
  o.set("sweep", sweep_to_json(spec.sweep));
  o.set("fleet", fleet_to_json(spec.fleet, hexfloat));
  o.set("telemetry", telemetry_to_json(spec.telemetry));
  o.set("control", control_to_json(spec.control, hexfloat));
  return o;
}

ScenarioSpec spec_from_json(const Json& v) {
  ScenarioSpec spec;
  ObjectReader r(v, "");
  r.read("name", spec.name);
  r.read_enum("mode", spec.mode,
              {RunMode::kRound, RunMode::kSweep, RunMode::kDes, RunMode::kFleet,
               RunMode::kServe});
  if (const Json* j = r.take("deployment"))
    deployment_from_json(*j, "deployment", spec.deployment);
  if (const Json* j = r.take("round")) round_from_json(*j, "round", spec.round);
  if (const Json* j = r.take("protocol"))
    protocol_from_json(*j, "protocol", spec.protocol);
  if (const Json* j = r.take("des")) des_from_json(*j, "des", spec.des);
  if (const Json* j = r.take("sweep")) sweep_from_json(*j, "sweep", spec.sweep);
  if (const Json* j = r.take("fleet")) fleet_from_json(*j, "fleet", spec.fleet);
  if (const Json* j = r.take("telemetry"))
    telemetry_from_json(*j, "telemetry", spec.telemetry);
  if (const Json* j = r.take("control"))
    control_from_json(*j, "control", spec.control);
  r.finish();
  return spec;
}

std::string write_spec(const ScenarioSpec& spec, bool hexfloat) {
  JsonWriteOptions opts;
  opts.hexfloat = hexfloat;
  return write_json(to_json(spec, hexfloat), opts);
}

ScenarioSpec parse_spec(std::string_view json_text) {
  return spec_from_json(parse_json(json_text));
}

ScenarioSpec load_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("", "cannot open spec file " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  // Every failure mode below — JSON syntax, structural spec errors, failed
  // validation — must surface with the file's path: load_spec is what CLIs
  // call, and "round.arrival.sigma_m: must be >= 0" with no file name is
  // useless when a run loads several specs.
  try {
    ScenarioSpec spec = parse_spec(ss.str());
    validate_or_throw(spec);
    return spec;
  } catch (const JsonError& e) {
    throw SpecError("", path + ": " + e.what());
  } catch (const SpecError& e) {
    // e.what() already carries the dotted field path; prepend the file.
    throw SpecError("", path + ": " + e.what());
  }
}

void save_spec(const ScenarioSpec& spec, const std::string& path, bool hexfloat) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SpecError("", "cannot open " + path + " for writing");
  out << write_spec(spec, hexfloat);
  if (!out) throw SpecError("", "write failed for " + path);
}

// --- validation -------------------------------------------------------------

std::size_t deployment_device_count(const ScenarioSpec& spec) {
  switch (spec.deployment.preset) {
    case DeploymentPreset::kDock:
    case DeploymentPreset::kBoathouse:
      return 5;
    case DeploymentPreset::kAnalytical:
      return spec.deployment.devices;
    case DeploymentPreset::kExplicit:
      return spec.deployment.positions.size();
  }
  return 0;
}

std::vector<std::string> validate(const ScenarioSpec& spec) {
  std::vector<std::string> errors;
  const auto err = [&errors](const std::string& path, const std::string& what) {
    errors.push_back(path + ": " + what);
  };
  const auto finite = [](double v) { return std::isfinite(v); };

  if (spec.name.empty()) err("name", "must be non-empty");

  // deployment
  const std::size_t n = deployment_device_count(spec);
  if (spec.deployment.preset == DeploymentPreset::kAnalytical &&
      spec.deployment.devices < 2)
    err("deployment.devices", "need at least 2 devices (leader + one)");
  if (spec.deployment.preset == DeploymentPreset::kExplicit &&
      spec.deployment.positions.size() < 2)
    err("deployment.positions", "need at least 2 positions (leader + one)");
  if (spec.deployment.preset != DeploymentPreset::kExplicit &&
      !spec.deployment.positions.empty())
    err("deployment.positions", "only valid with preset \"explicit\"");
  for (std::size_t i = 0; i < spec.deployment.positions.size(); ++i) {
    const Vec3& p = spec.deployment.positions[i];
    if (!finite(p.x) || !finite(p.y) || !finite(p.z))
      err("deployment.positions[" + std::to_string(i) + "]", "must be finite");
  }

  // round
  const pipeline::ArrivalErrorModel& a = spec.round.fast_arrival;
  if (!finite(a.sigma_m) || a.sigma_m < 0.0)
    err("round.arrival.sigma_m", "must be >= 0");
  if (!finite(a.sigma_per_m) || a.sigma_per_m < 0.0)
    err("round.arrival.sigma_per_m", "must be >= 0");
  if (!(a.detection_failure_prob >= 0.0 && a.detection_failure_prob <= 1.0))
    err("round.arrival.detection_failure_prob", "out of range [0, 1]");
  if (!finite(spec.round.sound_speed_error_mps))
    err("round.sound_speed_error_mps", "must be finite");
  const sensors::DepthSensorModel& ds = spec.round.depth_sensor;
  if (!finite(ds.bias_m)) err("round.depth_sensor.bias_m", "must be finite");
  if (!finite(ds.noise_sigma_m) || ds.noise_sigma_m < 0.0)
    err("round.depth_sensor.noise_sigma_m", "must be >= 0");
  if (!finite(ds.quantization_m) || ds.quantization_m < 0.0)
    err("round.depth_sensor.quantization_m", "must be >= 0");
  if (!finite(spec.round.pointing.sigma_deg) || spec.round.pointing.sigma_deg < 0.0)
    err("round.pointing.sigma_deg", "must be >= 0");
  if (!finite(spec.round.pointing.sigma_per_meter_deg) ||
      spec.round.pointing.sigma_per_meter_deg < 0.0)
    err("round.pointing.sigma_per_meter_deg", "must be >= 0");
  const core::OutlierOptions& out = spec.round.localizer.outlier;
  if (!finite(out.stress_threshold) || out.stress_threshold <= 0.0)
    err("round.localizer.outlier.stress_threshold", "must be > 0");
  if (!(out.drop_ratio >= 0.0 && out.drop_ratio <= 1.0))
    err("round.localizer.outlier.drop_ratio", "out of range [0, 1]");
  if (out.max_outliers < 0) err("round.localizer.outlier.max_outliers", "must be >= 0");
  if (out.smacof.max_iterations < 1)
    err("round.localizer.outlier.smacof.max_iterations", "must be >= 1");
  if (!finite(out.smacof.rel_tolerance) || out.smacof.rel_tolerance <= 0.0)
    err("round.localizer.outlier.smacof.rel_tolerance", "must be > 0");
  if (out.smacof.random_restarts < 0)
    err("round.localizer.outlier.smacof.random_restarts", "must be >= 0");
  if (!finite(out.smacof.init_spread) || out.smacof.init_spread <= 0.0)
    err("round.localizer.outlier.smacof.init_spread", "must be > 0");

  // protocol
  if (spec.protocol.num_devices < 2) err("protocol.num_devices", "must be >= 2");
  if (spec.mode != RunMode::kFleet && spec.protocol.num_devices != n)
    err("protocol.num_devices",
        "must equal the deployment's device count (" + std::to_string(n) + ")");
  if (!finite(spec.protocol.delta0_s) || spec.protocol.delta0_s <= 0.0)
    err("protocol.delta0_s", "must be > 0");
  if (!finite(spec.protocol.t_packet_s) || spec.protocol.t_packet_s <= 0.0)
    err("protocol.t_packet_s", "must be > 0");
  if (!finite(spec.protocol.t_guard_s) || spec.protocol.t_guard_s <= 0.0)
    err("protocol.t_guard_s", "must be > 0");
  if (!finite(spec.protocol.sound_speed_mps) || spec.protocol.sound_speed_mps <= 0.0)
    err("protocol.sound_speed_mps", "must be > 0");
  if (!finite(spec.protocol.fs_hz) || spec.protocol.fs_hz <= 0.0)
    err("protocol.fs_hz", "must be > 0");

  // des
  if (spec.des.rounds < 1) err("des.rounds", "must be >= 1");
  if (!finite(spec.des.round_period_s) || spec.des.round_period_s < 0.0)
    err("des.round_period_s", "must be >= 0 (0 = auto)");
  if (!finite(spec.des.max_range_m) || spec.des.max_range_m < 0.0)
    err("des.max_range_m", "must be >= 0 (0 = connectivity only)");
  const core::TrackerConfig& tr = spec.des.tracker;
  if (!finite(tr.accel_noise) || tr.accel_noise < 0.0)
    err("des.tracker.accel_noise", "must be >= 0");
  if (!finite(tr.measurement_sigma_m) || tr.measurement_sigma_m <= 0.0)
    err("des.tracker.measurement_sigma_m", "must be > 0");
  if (!finite(tr.velocity_decay_tau_s) || tr.velocity_decay_tau_s <= 0.0)
    err("des.tracker.velocity_decay_tau_s", "must be > 0");
  if (!finite(tr.gate_sigmas) || tr.gate_sigmas <= 0.0)
    err("des.tracker.gate_sigmas", "must be > 0");
  bool any_lawnmower = false, any_waypoint = false;
  for (std::size_t i = 0; i < spec.des.motion.size(); ++i) {
    const std::string path = "des.motion[" + std::to_string(i) + "]";
    const MotionSpec& m = spec.des.motion[i];
    if (m.node >= n) err(path + ".node", "out of range (deployment has " +
                                             std::to_string(n) + " devices)");
    if (!finite(m.motion.axis.x) || !finite(m.motion.axis.y) ||
        !finite(m.motion.axis.z))
      err(path + ".axis", "must be finite");
    if (!finite(m.motion.span_m) || m.motion.span_m < 0.0)
      err(path + ".span_m", "must be >= 0");
    if (!finite(m.motion.phase_s)) err(path + ".phase_s", "must be finite");
    if (m.motion.waypoints.size() == 1)
      err(path + ".waypoints", "need >= 2 waypoints (or none)");
    for (std::size_t w = 0; w < m.motion.waypoints.size(); ++w) {
      const Vec3& p = m.motion.waypoints[w];
      if (!finite(p.x) || !finite(p.y) || !finite(p.z))
        err(path + ".waypoints[" + std::to_string(w) + "]", "must be finite");
    }
    const bool lawnmower = std::isfinite(m.motion.span_m) && m.motion.span_m > 0.0;
    const bool waypoint = m.motion.waypoints.size() >= 2;
    if (lawnmower && waypoint)
      err(path, "set either a lawnmower track (span_m) or waypoints, not both");
    if (!lawnmower && !waypoint)
      err(path, "set a lawnmower track (span_m > 0) or >= 2 waypoints");
    any_lawnmower |= lawnmower;
    any_waypoint |= waypoint;
    if (!finite(m.motion.speed_mps) || m.motion.speed_mps <= 0.0)
      err(path + ".speed_mps", "must be > 0 for a moving node");
  }
  if (any_lawnmower && any_waypoint)
    err("des.motion", "one mobility model per scenario: all lawnmower or all "
                      "waypoint tracks");

  // Worker counts share threads_from_args' cap: 0 = all hardware threads,
  // anything above 1024 is a typo, not a machine.
  constexpr std::size_t kMaxWorkers = 1024;
  if (spec.round.localizer.outlier.search_threads > kMaxWorkers)
    err("round.localizer.outlier.search_threads", "must be <= 1024 (0 = all)");

  // sweep
  if (spec.sweep.trials < 1) err("sweep.trials", "must be >= 1");
  if (spec.sweep.threads > kMaxWorkers) err("sweep.threads", "must be <= 1024 (0 = all)");

  // fleet
  if (spec.fleet.options.shards > kMaxWorkers)
    err("fleet.shards", "must be <= 1024 (0 = one per hardware thread)");
  const sim::WorkloadParams& w = spec.fleet.workload;
  if (w.sessions < 1) err("fleet.workload.sessions", "must be >= 1");
  if (w.min_group_size < 4) err("fleet.workload.min_group_size", "must be >= 4");
  if (w.max_group_size < w.min_group_size)
    err("fleet.workload.max_group_size", "must be >= min_group_size");
  if (w.min_rounds < 1) err("fleet.workload.min_rounds", "must be >= 1");
  if (w.max_rounds < w.min_rounds)
    err("fleet.workload.max_rounds", "must be >= min_rounds");
  if (w.force_kind > static_cast<int>(sim::GroupScenarioKind::kPacketDes))
    err("fleet.workload.kind_mix", "out of range");

  // fleet.server (serve mode)
  const ServeSpec& srv = spec.fleet.server;
  if (srv.options.workers > kMaxWorkers)
    err("fleet.server.workers", "must be <= 1024 (0 = one per hardware thread)");
  if (srv.options.queue_depth < 1) err("fleet.server.queue_depth", "must be >= 1");
  if (!finite(srv.tick_period_s) || srv.tick_period_s <= 0.0)
    err("fleet.server.tick_period_s", "must be > 0");
  if (srv.transport_capacity < 1)
    err("fleet.server.transport_capacity", "must be >= 1");
  const fleet::ShaperOptions& sh = srv.options.shaping;
  if (sh.ingest_shards < 1 || sh.ingest_shards > kMaxWorkers)
    err("fleet.server.shaping.ingest_shards", "must be in [1, 1024]");
  if (sh.queue_depth < 1) err("fleet.server.shaping.queue_depth", "must be >= 1");
  if (!finite(sh.drain_rounds_per_s) || sh.drain_rounds_per_s <= 0.0)
    err("fleet.server.shaping.drain_rounds_per_s", "must be > 0");
  if (!finite(sh.rate_rounds_per_s) || sh.rate_rounds_per_s < 0.0)
    err("fleet.server.shaping.rate_rounds_per_s", "must be >= 0 (0 = unlimited)");
  if (!finite(sh.burst_rounds) || sh.burst_rounds < 1.0)
    err("fleet.server.shaping.burst_rounds", "must be >= 1");
  if (!(sh.feedback_threshold >= 0.0 && sh.feedback_threshold <= 1.0))
    err("fleet.server.shaping.feedback_threshold", "out of range [0, 1]");
  if (!finite(sh.defer_delay_s) || sh.defer_delay_s <= 0.0)
    err("fleet.server.shaping.defer_delay_s", "must be > 0");

  // telemetry
  if (spec.telemetry.window_ticks < 1) err("telemetry.window_ticks", "must be >= 1");
  // The ring rounds up to a power of two; cap it where "capacity" stops
  // being a buffer and starts being a typo'd byte count.
  if (spec.telemetry.ring_capacity < 1 ||
      spec.telemetry.ring_capacity > (std::size_t{1} << 24))
    err("telemetry.ring_capacity", "must be in [1, 16777216]");
  if (spec.telemetry.trace.max_spans < 1 ||
      spec.telemetry.trace.max_spans > (std::size_t{1} << 26))
    err("telemetry.trace.max_spans", "must be in [1, 67108864]");
  if (spec.telemetry.flight.capacity > (std::size_t{1} << 20))
    err("telemetry.flight.capacity", "must be <= 1048576");
  if (spec.telemetry.flight.max_dumps > 1024)
    err("telemetry.flight.max_dumps", "must be <= 1024");
  if (spec.telemetry.flight.evict_storm < 1)
    err("telemetry.flight.evict_storm", "must be >= 1");
  if (spec.telemetry.flight.shed_burst < 1)
    err("telemetry.flight.shed_burst", "must be >= 1");
  if (spec.telemetry.flight.localize_failures < 1)
    err("telemetry.flight.localize_failures", "must be >= 1");

  // control
  const ControlSpec& ctl = spec.control;
  if (ctl.enabled && !spec.telemetry.enabled)
    err("control.enabled", "requires telemetry.enabled (the counter plane drives it)");
  if (ctl.evict_storm < 1) err("control.evict_storm", "must be >= 1");
  if (ctl.retain_base < 1) err("control.retain_base", "must be >= 1");
  if (ctl.retain_max < ctl.retain_base)
    err("control.retain_max", "must be >= control.retain_base");
  if (!finite(ctl.rate_step) || ctl.rate_step <= 1.0)
    err("control.rate_step", "must be > 1");
  if (!finite(ctl.rate_max_multiplier) || ctl.rate_max_multiplier < 1.0)
    err("control.rate_max_multiplier", "must be >= 1");
  if (ctl.solver_iters_high <= ctl.solver_iters_low)
    err("control.solver_iters_high", "must be > control.solver_iters_low");
  if (ctl.max_search_threads < 1 || ctl.max_search_threads > 1024)
    err("control.max_search_threads", "must be in [1, 1024]");

  return errors;
}

void validate_or_throw(const ScenarioSpec& spec) {
  const std::vector<std::string> errors = validate(spec);
  if (errors.empty()) return;
  std::string what = "invalid spec:";
  for (const std::string& e : errors) what += "\n  " + e;
  throw SpecError("", what);
}

bool bit_equal(const ScenarioSpec& a, const ScenarioSpec& b) {
  // Hexfloat serialization is injective on every field (bit-level for
  // doubles), so string equality IS structural bit equality.
  return write_spec(a, true) == write_spec(b, true);
}

}  // namespace uwp::config
