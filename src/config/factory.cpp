#include "config/factory.hpp"

#include <memory>
#include <utility>

#include "channel/environment.hpp"
#include "des/mobility.hpp"

namespace uwp::config {

namespace {

channel::Environment environment_preset(EnvironmentPreset preset) {
  switch (preset) {
    case EnvironmentPreset::kPool:
      return channel::make_pool();
    case EnvironmentPreset::kDock:
      return channel::make_dock();
    case EnvironmentPreset::kViewpoint:
      return channel::make_viewpoint();
    case EnvironmentPreset::kBoathouse:
      return channel::make_boathouse();
  }
  return channel::make_dock();
}

sim::Deployment deployment_from_positions(const ScenarioSpec& spec,
                                          std::vector<Vec3> positions,
                                          uwp::Rng& rng) {
  sim::Deployment dep;
  dep.env = environment_preset(spec.deployment.environment);
  for (Vec3& p : positions) {
    sim::ScenarioDevice dev;
    dev.position = p;
    if (spec.deployment.random_audio) dev.audio = sim::random_audio_timing(rng);
    dep.devices.push_back(dev);
  }
  dep.protocol.num_devices = dep.devices.size();
  dep.connect_all();
  return dep;
}

}  // namespace

sim::Deployment make_deployment(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  uwp::Rng rng(spec.deployment.seed);
  sim::Deployment dep;
  switch (spec.deployment.preset) {
    case DeploymentPreset::kDock:
      dep = sim::make_dock_testbed(rng);
      break;
    case DeploymentPreset::kBoathouse:
      dep = sim::make_boathouse_testbed(rng);
      break;
    case DeploymentPreset::kAnalytical:
      dep = deployment_from_positions(
          spec,
          sim::random_analytical_topology(spec.deployment.devices, rng).positions,
          rng);
      break;
    case DeploymentPreset::kExplicit:
      dep = deployment_from_positions(spec, spec.deployment.positions, rng);
      break;
  }
  // Protocol timing from the spec; the true sound speed is environment
  // physics and stays with the deployment (ScenarioRunner::scene overrides
  // it from env for the acoustic drivers).
  dep.protocol.delta0_s = spec.protocol.delta0_s;
  dep.protocol.t_packet_s = spec.protocol.t_packet_s;
  dep.protocol.t_guard_s = spec.protocol.t_guard_s;
  dep.protocol.fs_hz = spec.protocol.fs_hz;
  return dep;
}

sim::ScenarioRunner make_scenario_runner(const ScenarioSpec& spec) {
  return sim::ScenarioRunner(make_deployment(spec));
}

sim::RoundOptions make_round_options(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  return spec.round;
}

des::DesScenario make_des_scenario(const ScenarioSpec& spec) {
  const sim::Deployment dep = make_deployment(spec);  // validates
  const std::size_t n = dep.size();

  des::DesScenarioConfig cfg;
  cfg.protocol = spec.protocol;  // DES is protocol-level: spec speed wholesale
  cfg.protocol.num_devices = n;
  cfg.rounds = spec.des.rounds;
  cfg.round_period_s = spec.des.round_period_s;
  cfg.max_range_m = spec.des.max_range_m;
  cfg.ideal_arrivals = spec.des.ideal_arrivals;
  cfg.arrival = spec.round.fast_arrival;
  cfg.quantize_payload = spec.round.quantize_payload;
  cfg.sound_speed_error_mps = spec.round.sound_speed_error_mps;
  cfg.depth_sensor = spec.round.depth_sensor;
  cfg.pointing = spec.round.pointing;
  cfg.localizer = spec.round.localizer;
  cfg.tracker = spec.des.tracker;

  std::vector<Vec3> origins;
  std::vector<audio::AudioTimingConfig> audio;
  for (const sim::ScenarioDevice& dev : dep.devices) {
    origins.push_back(dev.position);
    audio.push_back(dev.audio);
  }

  // Mobility: validated to be all-lawnmower or all-waypoint (or static).
  bool waypoint = false;
  for (const MotionSpec& m : spec.des.motion)
    if (m.motion.waypoints.size() >= 2) waypoint = true;
  std::shared_ptr<const des::MobilityModel> mobility;
  if (spec.des.motion.empty()) {
    mobility = std::make_shared<des::StaticMobility>(std::move(origins));
  } else if (waypoint) {
    auto mob = std::make_shared<des::WaypointMobility>(std::move(origins));
    for (const MotionSpec& m : spec.des.motion) {
      des::WaypointTrack track;
      track.waypoints = m.motion.waypoints;
      track.speed_mps = m.motion.speed_mps;
      mob->set_track(m.node, std::move(track));
    }
    mobility = std::move(mob);
  } else {
    auto mob = std::make_shared<des::LawnmowerMobility>(std::move(origins));
    for (const MotionSpec& m : spec.des.motion) {
      des::LawnmowerTrack track;
      track.direction = m.motion.axis;
      track.span_m = m.motion.span_m;
      track.speed_mps = m.motion.speed_mps;
      track.phase_s = m.motion.phase_s;
      mob->set_track(m.node, track);
    }
    mobility = std::move(mob);
  }

  return des::DesScenario(std::move(cfg), std::move(mobility), std::move(audio),
                          dep.connectivity);
}

sim::WorkloadParams workload_params(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  return spec.fleet.workload;
}

std::vector<sim::GroupScenario> make_workload(const ScenarioSpec& spec) {
  return sim::make_workload(workload_params(spec));
}

fleet::FleetService make_fleet_service(const ScenarioSpec& spec) {
  return fleet::FleetService(spec.fleet.options, make_workload(spec));
}

fleet::Server make_fleet_server(const ScenarioSpec& spec) {
  fleet::ServerOptions opts = spec.fleet.server.options;
  opts.master_seed = spec.fleet.options.master_seed;
  opts.measure_latency = spec.fleet.options.measure_latency;
  return fleet::Server(opts, make_workload(spec));
}

sim::SweepRunner make_sweep(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  return sim::SweepRunner(spec.sweep);
}

telemetry::TelemetryOptions make_telemetry_options(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  telemetry::TelemetryOptions opts;
  opts.enabled = spec.telemetry.enabled;
  opts.timing = spec.telemetry.timing;
  opts.ring_capacity = spec.telemetry.ring_capacity;
  // Counter windows are specified in scheduler ticks. The fleet service
  // stamps virtual time in tick units; the serve path stamps frame t_s,
  // which advances tick_period_s per tick — scale so both modes window the
  // same virtual timeline and their counter sections stay comparable.
  opts.window = static_cast<double>(spec.telemetry.window_ticks);
  if (spec.mode == RunMode::kServe) opts.window *= spec.fleet.server.tick_period_s;
  opts.trace = spec.telemetry.trace.enabled;
  opts.trace_max_spans = spec.telemetry.trace.max_spans;
  opts.flight.capacity = spec.telemetry.flight.capacity;
  opts.flight.max_dumps = spec.telemetry.flight.max_dumps;
  opts.flight.evict_storm = spec.telemetry.flight.evict_storm;
  opts.flight.shed_burst = spec.telemetry.flight.shed_burst;
  opts.flight.localize_failures = spec.telemetry.flight.localize_failures;
  return opts;
}

control::ControlConfig make_control_config(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  control::ControlConfig cfg;
  cfg.enabled = spec.control.enabled;
  cfg.arena = spec.control.arena;
  cfg.shaper = spec.control.shaper;
  cfg.solver = spec.control.solver;
  // The control window IS the telemetry window: the engine folds the
  // counter plane's own snapshots, so the two cannot be sized apart.
  cfg.window_ticks = spec.telemetry.window_ticks;
  cfg.evict_storm = spec.control.evict_storm;
  cfg.retain_base = spec.control.retain_base;
  cfg.retain_max = spec.control.retain_max;
  cfg.rate_step = spec.control.rate_step;
  cfg.rate_max_multiplier = spec.control.rate_max_multiplier;
  cfg.solver_iters_high = spec.control.solver_iters_high;
  cfg.solver_iters_low = spec.control.solver_iters_low;
  cfg.max_search_threads = spec.control.max_search_threads;
  return cfg;
}

control::ShardControls make_control_baseline(const ScenarioSpec& spec) {
  validate_or_throw(spec);
  control::ShardControls base;
  // Shaper knobs start at the configured shaping section; everything else
  // at the ShardControls defaults (LRU, unbounded retention, one search
  // thread). A fleet-mode run never consults the shaper fields (the
  // ShaperTunerPolicy is inert at rate 0 and the fleet has no shaper).
  const fleet::ShaperOptions& sh = spec.fleet.server.options.shaping;
  base.shaper_rate = sh.rate_rounds_per_s;
  base.shaper_burst = sh.burst_rounds;
  base.shaper_max_defers = sh.max_defers;
  return base;
}

}  // namespace uwp::config
