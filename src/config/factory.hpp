// Factories: one validated ScenarioSpec constructs any driver in the stack.
// Every factory validates first (throwing SpecError with the full
// path-qualified error list) and then builds exactly the object a hand-wired
// main would have: the spec's backing structs are passed through untouched,
// so spec-built runs are bit-identical to programmatic ones (pinned by
// tests/config/factory_test.cpp).
#pragma once

#include <vector>

#include "config/spec.hpp"
#include "control/policy.hpp"
#include "des/scenario.hpp"
#include "fleet/service.hpp"
#include "sim/deployment.hpp"
#include "sim/fleet_workload.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "telemetry/collector.hpp"

namespace uwp::config {

// The deployment the spec describes: the named testbed (dock/boathouse,
// audio clocks drawn from deployment.seed), a random analytical topology,
// or the explicit position list; protocol timing knobs applied from
// spec.protocol (the true sound speed stays environment-derived for the
// acoustic drivers).
sim::Deployment make_deployment(const ScenarioSpec& spec);

// Closed-form/waveform driver: ScenarioRunner over make_deployment plus the
// spec's per-round options.
sim::ScenarioRunner make_scenario_runner(const ScenarioSpec& spec);
sim::RoundOptions make_round_options(const ScenarioSpec& spec);

// Packet-level driver: DesScenario over the same deployment geometry, with
// mobility assembled from des.motion (static / lawnmower / waypoint) and the
// shared round-model knobs (arrival errors, sensors, localizer) from
// spec.round.
des::DesScenario make_des_scenario(const ScenarioSpec& spec);

// Fleet driver: the workload mix (sim::make_workload on the spec's backing
// WorkloadParams — field-for-field identical to the programmatic call) and
// a FleetService serving it.
sim::WorkloadParams workload_params(const ScenarioSpec& spec);
std::vector<sim::GroupScenario> make_workload(const ScenarioSpec& spec);
fleet::FleetService make_fleet_service(const ScenarioSpec& spec);

// Serving front-end over the same workload: fleet::Server configured from
// fleet.server, with master_seed and measure_latency mirrored from
// fleet.options so the streamed run is comparable (bit-identical when
// shaping is off) to make_fleet_service's.
fleet::Server make_fleet_server(const ScenarioSpec& spec);

// Monte-Carlo sweep configured from spec.sweep.
sim::SweepRunner make_sweep(const ScenarioSpec& spec);

// Collector options from the telemetry section. The spec's window_ticks is
// converted to the mode's virtual-time unit: fleet runs stamp tick indices,
// serve runs stamp frame t_s (tick_period_s per tick), so the serve window
// is scaled by tick_period_s — same windows on the same virtual timeline.
telemetry::TelemetryOptions make_telemetry_options(const ScenarioSpec& spec);

// Control-plane config from the control section. The fold's window length
// is telemetry.window_ticks — the engine consumes the counter plane's own
// windows, so the two sections cannot be sized apart.
control::ControlConfig make_control_config(const ScenarioSpec& spec);

// The knob bundle the control fold starts from: shaper fields seeded from
// fleet.server.options.shaping, everything else at the ShardControls
// defaults. Pass the same baseline to the live engine and to
// Replayer::replay for the record→replay pin to hold.
control::ShardControls make_control_baseline(const ScenarioSpec& spec);

}  // namespace uwp::config
