// Minimal dependency-free JSON: a value tree, a strict recursive-descent
// parser with line/column errors, and a writer whose double formatting is
// bit-exact on round trip. The spec codec (config/spec.hpp) is the only
// intended consumer, which keeps the surface small: objects preserve
// insertion order, numbers are doubles, and the few non-JSON douple shapes a
// spec needs (NaN, infinities, hexfloat) ride as strings through the
// double_to_json/json_as_double pair below.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uwp::config {

// Parse failure with the 1-based source position of the offending token.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t line, std::size_t column)
      : std::runtime_error(what + " at line " + std::to_string(line) + ":" +
                           std::to_string(column)),
        line_(line),
        column_(column) {}

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() = default;  // null
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw std::logic_error on a kind mismatch (the spec
  // reader catches shape errors earlier and reports them with a field path).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::vector<Member>& members() const;

  // Builders (valid on arrays / objects only).
  void push_back(Json v);
  void set(std::string key, Json value);

  // Object lookup; nullptr when the key is absent or this is not an object.
  const Json* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<Member> obj_;
};

// Strict JSON (no comments, no trailing commas). Throws JsonError.
Json parse_json(std::string_view text);

struct JsonWriteOptions {
  int indent = 2;         // 0 = compact single line
  bool hexfloat = false;  // see double_to_json
};
std::string write_json(const Json& v, const JsonWriteOptions& opts = {});

// --- doubles as data --------------------------------------------------------
// Every floating-point spec field travels through this pair, which
// guarantees an exact bit-level round trip:
//   * finite doubles become the shortest decimal literal that parses back to
//     the same bits (15..17 significant digits) — or, with hexfloat = true,
//     a "0x1.8p+2"-style string, which is exact by construction;
//   * NaN and the infinities (unrepresentable as JSON numbers) become the
//     strings "nan", "inf", "-inf".
// json_as_double accepts all of those shapes regardless of how the document
// was written.
Json double_to_json(double v, bool hexfloat = false);
bool json_as_double(const Json& v, double& out);

// Unsigned 64-bit fields (seeds) exceed double precision past 2^53; those
// ride as decimal strings, everything below as plain numbers.
Json u64_to_json(std::uint64_t v);
bool json_as_u64(const Json& v, std::uint64_t& out);

}  // namespace uwp::config
