// ScenarioSpec: the one declarative description every driver is built from.
// A spec is configs-as-data — channel/environment, deployment geometry,
// mobility, arrival-error mode, sensors, solver/localizer, protocol timing,
// DES toggles, and the fleet workload mix — serialized as JSON with exact
// (bit-level) double round trips and validated with path-qualified errors
// ("fleet.workload.max_group_size: must be >= min_group_size").
//
// The programmatic option structs the drivers already take
// (sim::RoundOptions, proto::ProtocolConfig, des-style toggles,
// sim::SweepOptions, fleet::FleetOptions, sim::WorkloadParams) are the
// spec's *backing fields*, so a driver built from a spec is the same object
// a hand-wired main would construct — bit-identical results, pinned by
// tests/config/. Factories live in config/factory.hpp; the uwp_run CLI
// (tools/uwp_run.cpp) is the standard way to execute a spec file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/json.hpp"
#include "core/tracker.hpp"
#include "fleet/server.hpp"
#include "fleet/service.hpp"
#include "proto/slot_schedule.hpp"
#include "sim/fleet_workload.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/geometry.hpp"

namespace uwp::config {

// Thrown on structural spec errors (bad type, unknown key, bad enum string,
// failed validation); `path()` is the dotted field path, "" for file-level
// problems.
class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& path, const std::string& what)
      : std::runtime_error(path.empty() ? what : path + ": " + what), path_(path) {}

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Which driver uwp_run executes by default (overridable with --mode).
enum class RunMode : std::uint8_t {
  kRound = 0,  // one localization round through sim::ScenarioRunner
  kSweep = 1,  // Monte-Carlo sweep of rounds via sim::SweepRunner
  kDes = 2,    // packet-level multi-round des::DesScenario
  kFleet = 3,  // many-session fleet::FleetService serving run
  kServe = 4,  // the same workload streamed through fleet::Server
};
const char* to_string(RunMode mode);

enum class DeploymentPreset : std::uint8_t {
  kDock = 0,        // sim::make_dock_testbed (Fig 17a)
  kBoathouse = 1,   // sim::make_boathouse_testbed (Fig 17b)
  kAnalytical = 2,  // sim::random_analytical_topology(devices)
  kExplicit = 3,    // positions given verbatim in the spec
};
const char* to_string(DeploymentPreset preset);

// channel::Environment presets (§3 sites). Only consulted for analytical /
// explicit deployments; the dock and boathouse testbeds carry their own.
enum class EnvironmentPreset : std::uint8_t {
  kPool = 0,
  kDock = 1,
  kViewpoint = 2,
  kBoathouse = 3,
};
const char* to_string(EnvironmentPreset preset);

struct DeploymentSpec {
  DeploymentPreset preset = DeploymentPreset::kDock;
  EnvironmentPreset environment = EnvironmentPreset::kDock;
  // Seed for every deployment-time draw: preset audio-clock offsets/skews,
  // analytical topology geometry.
  std::uint64_t seed = 2023;
  std::size_t devices = 5;           // kAnalytical: N including the leader
  std::vector<Vec3> positions;       // kExplicit: z = depth (m)
  // kAnalytical/kExplicit: draw per-device audio clocks with
  // sim::random_audio_timing (true) or run ideal zero-offset clocks (false).
  bool random_audio = true;
};

// One device's closed-form or DES motion (backing sim::GroupMotion).
struct MotionSpec {
  std::size_t node = 0;
  sim::GroupMotion motion;
};

// Packet-level DES toggles; everything the DES shares with the closed form
// (arrival errors, sensors, localizer, quantization) lives in `round`.
struct DesSpec {
  std::size_t rounds = 10;
  double round_period_s = 0.0;  // 0 = auto (worst-case relay round trip)
  double max_range_m = 0.0;     // medium range gate (0 = connectivity only)
  bool ideal_arrivals = false;  // cross-validation setting
  core::TrackerConfig tracker{};
  std::vector<MotionSpec> motion;  // lawnmower or waypoint tracks, by node
};

// Serve-mode knobs (fleet.server): the ingest server's worker/queue shape
// and the admission/shaping policy. The server's master_seed and
// measure_latency always mirror fleet.options — one seed drives both the
// synchronous and the streamed run of a workload, which is what makes the
// serve-vs-fleet bit-identity checkable from one spec.
struct ServeSpec {
  fleet::ServerOptions options{};
  // Virtual seconds per feeder tick (the ingest clock's granularity).
  double tick_period_s = 1.0;
  // RingBufferTransport capacity for the in-process serve driver.
  std::size_t transport_capacity = 256;
};

struct FleetSpec {
  fleet::FleetOptions options{};
  sim::WorkloadParams workload{};
  ServeSpec server{};
};

// Telemetry section (fleet/serve modes): configures the telemetry::Collector
// a run attaches to its shard/worker loops. Counters are windowed on the
// workload's virtual clock, so the emitted "counters" section is
// bit-identical at any shard/worker/thread count; spans and queue-depth
// samples ride the lossy ring and land in the run-varying "timing" section
// (src/telemetry/README.md spells out the contract).
struct TelemetrySpec {
  bool enabled = false;
  // false: keep counters but skip every clock read (no span histograms) —
  // the near-zero-overhead setting for production-shaped benchmarks.
  bool timing = true;
  // Counter window width in scheduler ticks. Serve mode scales it by
  // fleet.server.tick_period_s so both modes window the same virtual
  // timeline (make_telemetry_options).
  std::size_t window_ticks = 16;
  // Per-stream event ring capacity (rounded up to a power of two). Overflow
  // drops events — counted, never blocking the hot path.
  std::size_t ring_capacity = 1 << 15;
  // Causal round traces (telemetry.trace{}): per-round spans chaining
  // ingest -> queue -> batch -> pipeline stages, exported as Chrome
  // trace-event JSON by `uwp_run --trace-spans-out` (which force-enables
  // this). Span structure is deterministic; wall-clock timing is not.
  struct TraceSpec {
    bool enabled = false;
    // Per-stream recorded-span cap (safety valve for soak runs).
    std::size_t max_spans = 1 << 20;
  };
  TraceSpec trace{};
  // Flight recorder (telemetry.flight{}): bounded per-stream ring of
  // recently drained events, dumped on anomaly triggers. Thresholds are
  // counter deltas per telemetry window.
  struct FlightSpec {
    std::size_t capacity = 256;  // retained events per stream; 0 disables
    std::size_t max_dumps = 4;   // dump budget per stream
    std::size_t evict_storm = 8;
    std::size_t shed_burst = 16;
    std::size_t localize_failures = 8;
  };
  FlightSpec flight{};
};

// Control section (fleet/serve modes): the self-tuning control plane
// (src/control/README.md). When enabled (requires telemetry.enabled), the
// run folds each closed counter window through the policy chain and applies
// the resulting knob bundle — arena cache policy/retention, shaper
// rate/burst/defer budget, solver search threads. The window length is the
// telemetry window (telemetry.window_ticks); every decision is a pure
// function of (window index, counter snapshot, this section), so the
// emitted ControlLog is byte-identical at any shard/worker/thread count.
struct ControlSpec {
  bool enabled = false;
  // Per-policy gates (all pure subsets of the same fold).
  bool arena = true;
  bool shaper = true;
  bool solver = true;
  // Arena tuner: evictions per window that count as a storm, and the
  // retention band (free-list entries kept per group size).
  std::uint64_t evict_storm = 8;
  std::size_t retain_base = 4;
  std::size_t retain_max = 64;
  // Shaper tuner: multiplicative rate step per pressured window and the cap
  // (baseline rate x multiplier).
  double rate_step = 1.25;
  double rate_max_multiplier = 4.0;
  // Solver tuner: mean solver iterations per round above/below which the
  // pruned-search thread count doubles/halves.
  std::uint64_t solver_iters_high = 400;
  std::uint64_t solver_iters_low = 64;
  std::size_t max_search_threads = 8;
};

struct ScenarioSpec {
  std::string name = "scenario";
  RunMode mode = RunMode::kRound;
  DeploymentSpec deployment{};
  // The whole per-round model: waveform vs fast arrival errors, payload
  // quantization, sound-speed misconfiguration, sensors, localizer.
  sim::RoundOptions round{};
  // Protocol timing (delta0 / t_packet / t_guard / fs). For round/sweep
  // modes the water's true sound speed still comes from the deployment's
  // environment (ScenarioRunner::scene); DES runs use this config wholesale.
  proto::ProtocolConfig protocol{};
  DesSpec des{};
  sim::SweepOptions sweep{};
  FleetSpec fleet{};
  TelemetrySpec telemetry{};
  ControlSpec control{};
};

// --- serialization ----------------------------------------------------------

// Full-fidelity JSON tree (every field emitted, insertion-ordered).
// `hexfloat` switches double formatting to hexfloat strings; both forms
// round-trip bit-exactly (config/json.hpp).
Json to_json(const ScenarioSpec& spec, bool hexfloat = false);

// Strict reader: unknown keys, wrong types, and bad enum strings throw
// SpecError with the offending field's path. Absent fields keep their
// C++ defaults. Does NOT run validate() — parse and validation errors stay
// separable for testing.
ScenarioSpec spec_from_json(const Json& v);

std::string write_spec(const ScenarioSpec& spec, bool hexfloat = false);
ScenarioSpec parse_spec(std::string_view json_text);  // parse only
ScenarioSpec load_spec(const std::string& path);      // parse + validate
void save_spec(const ScenarioSpec& spec, const std::string& path,
               bool hexfloat = false);

// --- validation -------------------------------------------------------------

// Every violated constraint as "path: message", empty when the spec is
// runnable. Factories call validate_or_throw first, so a malformed spec
// fails with the full list before any driver is constructed.
std::vector<std::string> validate(const ScenarioSpec& spec);
void validate_or_throw(const ScenarioSpec& spec);

// Device count the spec's deployment resolves to (positions for explicit,
// `devices` for analytical, 5 for the testbed presets).
std::size_t deployment_device_count(const ScenarioSpec& spec);

// Exact structural equality, bit-level for every double (NaN == NaN): the
// definition of "round trip is exact" used by the spec tests.
bool bit_equal(const ScenarioSpec& a, const ScenarioSpec& b);

}  // namespace uwp::config
