#include "config/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace uwp::config {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw std::logic_error("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw std::logic_error("json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw std::logic_error("json: not an array");
  return arr_;
}

const std::vector<Json::Member>& Json::members() const {
  if (kind_ != Kind::kObject) throw std::logic_error("json: not an object");
  return obj_;
}

void Json::push_back(Json v) {
  if (kind_ != Kind::kArray) throw std::logic_error("json: push_back on non-array");
  arr_.push_back(std::move(v));
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) throw std::logic_error("json: set on non-object");
  obj_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : obj_)
    if (m.first == key) return &m.second;
  return nullptr;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what, line_, pos_ - line_start_ + 1);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      take();
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    take();
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    for (std::size_t i = 0; i < word.size(); ++i) take();
    return true;
  }

  Json value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of document");
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return Json::string(string());
    if (c == 't') {
      if (!literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!literal("null")) fail("bad literal");
      return Json();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    fail("unexpected character");
  }

  Json object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      Json v = value(depth + 1);
      if (obj.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      obj.set(std::move(key), std::move(v));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        take();
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return arr;
    }
    while (true) {
      arr.push_back(value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        take();
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    if (eof() || peek() != '"') fail("expected string");
    take();
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = take();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("unterminated \\u escape");
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed for
          // spec files; a lone surrogate encodes as-is, mirroring input).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') take();
    auto digits = [&] {
      bool any = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        take();
        any = true;
      }
      return any;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail("bad number");
    if (text_[int_start] == '0' && pos_ - int_start > 1)
      fail("bad number (leading zero)");
    if (!eof() && peek() == '.') {
      take();
      if (!digits()) fail("bad number (missing fraction digits)");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      if (!digits()) fail("bad number (missing exponent digits)");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    // Overflow (1e999) is malformed input; underflow-to-subnormal is a
    // legitimate value (the writer emits subnormals) and stays accepted.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
      fail("number out of range");
    return Json::number(v);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

Json parse_json(std::string_view text) { return Parser(text).parse(); }

// --- writer -----------------------------------------------------------------

namespace {

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Shortest decimal literal that parses back to exactly the same bits.
std::string format_double(double v) {
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    const double back = std::strtod(buf, nullptr);
    if (std::memcmp(&back, &v, sizeof v) == 0) break;
  }
  // JSON numbers need a fraction or exponent marker to stay doubles in other
  // tooling; bare integers are fine (the parser reads every number as one).
  return buf;
}

void write_into(std::string& out, const Json& v, const JsonWriteOptions& opts,
                int depth) {
  const bool pretty = opts.indent > 0;
  const auto newline_indent = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(opts.indent * d), ' ');
  };

  switch (v.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kNumber:
      out += format_double(v.as_number());
      return;
    case Json::Kind::kString:
      escape_into(out, v.as_string());
      return;
    case Json::Kind::kArray: {
      const std::vector<Json>& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      // Short scalar arrays (vectors, waypoints) stay on one line.
      bool scalars_only = true;
      for (const Json& it : items)
        if (it.is_array() || it.is_object()) scalars_only = false;
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += scalars_only && pretty ? ", " : ",";
        if (!scalars_only) newline_indent(depth + 1);
        write_into(out, items[i], opts, depth + 1);
      }
      if (!scalars_only) newline_indent(depth);
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      const std::vector<Json::Member>& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(depth + 1);
        escape_into(out, members[i].first);
        out += pretty ? ": " : ":";
        write_into(out, members[i].second, opts, depth + 1);
      }
      newline_indent(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string write_json(const Json& v, const JsonWriteOptions& opts) {
  std::string out;
  write_into(out, v, opts, 0);
  if (opts.indent > 0) out.push_back('\n');
  return out;
}

// --- doubles / u64 as data --------------------------------------------------

Json double_to_json(double v, bool hexfloat) {
  if (std::isnan(v)) return Json::string("nan");
  if (std::isinf(v)) return Json::string(v > 0 ? "inf" : "-inf");
  if (hexfloat) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return Json::string(buf);
  }
  return Json::number(v);
}

bool json_as_double(const Json& v, double& out) {
  if (v.is_number()) {
    out = v.as_number();
    return true;
  }
  if (!v.is_string()) return false;
  const std::string& s = v.as_string();
  if (s == "nan") {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (s == "inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  out = parsed;
  return true;
}

Json u64_to_json(std::uint64_t v) {
  if (v < (1ull << 53)) return Json::number(static_cast<double>(v));
  return Json::string(std::to_string(v));
}

bool json_as_u64(const Json& v, std::uint64_t& out) {
  if (v.is_number()) {
    const double d = v.as_number();
    // Bare numbers stop strictly below 2^53: every such double is an exact
    // integer, while from 2^53 up the decimal token may already have been
    // rounded by the parser (2^53 + 1 parses as 2^53) — a seed changing
    // behind the user's back. From 2^53 on, the string form u64_to_json
    // emits is required.
    if (d < 0.0 || d >= 9007199254740992.0 || d != std::floor(d)) return false;
    out = static_cast<std::uint64_t>(d);
    return true;
  }
  if (!v.is_string()) return false;
  const std::string& s = v.as_string();
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  errno = 0;
  const unsigned long long parsed = std::strtoull(s.c_str(), nullptr, 10);
  if (errno == ERANGE) return false;
  out = parsed;
  return true;
}

}  // namespace uwp::config
